// Package trace records the per-packet connection history the paper's
// Figures 3-5 visualize: every segment transmission plotted as (send time,
// packet number mod 90), with retransmissions appearing as repeated marks
// on the same horizontal line.
//
// The package renders the same data two ways: a CSV suitable for any
// plotting tool, and an ASCII scatter for terminal inspection.
package trace

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/packet"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// EventKind discriminates trace events.
type EventKind int

// Event kinds.
const (
	// Send is an original segment transmission.
	Send EventKind = iota + 1
	// Retransmit is a source retransmission of previously sent data.
	Retransmit
	// Timeout is a retransmission-timer expiry at the source.
	Timeout
	// FastRetx is a third-duplicate-ACK fast retransmit trigger.
	FastRetx
	// EBSNReset is a timer re-arm caused by an EBSN.
	EBSNReset
	// AckIn is the source's processing of one inbound cumulative ACK.
	AckIn
	// QuenchIn is the source's processing of an ICMP source quench.
	QuenchIn
	// ECNEcho is an ECN congestion echo acted on by the source.
	ECNEcho
	// ARQAttempt is a base-station link-unit transmission (try or retry).
	ARQAttempt
	// ARQFailure is a link-ack timeout: one unsuccessful attempt.
	ARQFailure
	// ARQAck is a link-level acknowledgment completing a unit.
	ARQAck
	// ARQDiscard is a whole-packet withdrawal after RTmax retransmissions.
	ARQDiscard
	// EBSNSent and QuenchSent are control messages emitted by the base
	// station toward the source.
	EBSNSent
	QuenchSent
	// MHDeliver is the mobile host handing a sequenced unit up in link
	// order; Unit carries the link sequence number.
	MHDeliver
	// SnoopAdmit is the Snoop agent caching one downlink segment.
	SnoopAdmit
	// SnoopRetx is a Snoop local retransmission toward the mobile host;
	// Attempt carries the 1-based per-segment retransmission count.
	SnoopRetx
	// SnoopSuppress is a duplicate ACK absorbed at the base station
	// instead of being forwarded to the fixed host; Ack carries the
	// cumulative acknowledgment number.
	SnoopSuppress
	// SnoopEvict is the Snoop agent dropping a cached segment after the
	// local retransmission cap; the fixed host's own recovery takes over.
	SnoopEvict
)

// kindNames maps kinds to their stable wire names (CSV, golden traces).
var kindNames = map[EventKind]string{
	Send:          "send",
	Retransmit:    "retransmit",
	Timeout:       "timeout",
	FastRetx:      "fastretx",
	EBSNReset:     "ebsn",
	AckIn:         "ackin",
	QuenchIn:      "quenchin",
	ECNEcho:       "ecnecho",
	ARQAttempt:    "arqattempt",
	ARQFailure:    "arqfailure",
	ARQAck:        "arqack",
	ARQDiscard:    "arqdiscard",
	EBSNSent:      "ebsnsent",
	QuenchSent:    "quenchsent",
	MHDeliver:     "mhdeliver",
	SnoopAdmit:    "snoopadmit",
	SnoopRetx:     "snoopretx",
	SnoopSuppress: "snoopsuppress",
	SnoopEvict:    "snoopevict",
}

// String names the kind for CSV and golden output.
func (k EventKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// ParseEventKind converts a stable wire name back into a kind.
func ParseEventKind(name string) (EventKind, error) {
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", name)
}

// PacketModulo is the paper's vertical-axis wraparound ("packet number mod
// 90").
const PacketModulo = 90

// Event is one recorded occurrence. The first four fields are the
// original Figure 3-5 scatter data; the rest are the conformance fields
// the oracle layer checks (zero where a kind does not use them).
type Event struct {
	At   time.Duration
	Kind EventKind
	// Seq is the first byte offset of the segment involved (zero for
	// EBSN resets).
	Seq int64
	// PacketNo is Seq divided by the MSS — the paper's packet number.
	PacketNo int64

	// Payload is the segment's payload bytes (sender transmissions).
	Payload int64
	// Ack and AckClass describe an inbound cumulative ACK (AckIn); the
	// class values mirror tcp.AckClass.
	Ack      int64
	AckClass int
	// Cwnd and Ssthresh are the sender's post-transition congestion state
	// in bytes; SndUna/SndNxt/SndMax its sequence pointers.
	Cwnd, Ssthresh         int64
	SndUna, SndNxt, SndMax int64
	// RTO is the current retransmission timeout; Deadline the timer's
	// absolute expiry (negative when idle).
	RTO      time.Duration
	Deadline time.Duration
	// Shift is the Karn backoff exponent; DupAcks the duplicate-ACK run.
	Shift   int
	DupAcks int
	// Attempt is the 1-based ARQ transmission count (ARQ events).
	Attempt int
	// Unit is the link unit's packet ID (ARQ events) or the link sequence
	// number (MHDeliver); Pkt the owning network packet's ID.
	Unit uint64
	Pkt  uint64
}

// Trace accumulates events for one connection.
type Trace struct {
	mss    units.ByteSize
	events []Event
	// observer, when set, sees every recorded event with its index.
	observer func(idx int, e Event)
}

// New returns an empty trace for a connection with the given MSS (used to
// convert byte offsets into packet numbers).
func New(mss units.ByteSize) *Trace {
	if mss <= 0 {
		mss = 1
	}
	return &Trace{mss: mss}
}

// packetNo converts a byte offset to the paper's packet number.
func (tr *Trace) packetNo(seq int64) int64 { return seq / int64(tr.mss) }

// Record appends a bare event (the original Figure 3-5 fields only).
func (tr *Trace) Record(at time.Duration, kind EventKind, seq int64) {
	tr.record(Event{At: at, Kind: kind, Seq: seq})
}

// record derives the packet number, appends the event, and notifies the
// observer.
func (tr *Trace) record(e Event) {
	e.PacketNo = tr.packetNo(e.Seq)
	tr.events = append(tr.events, e)
	if tr.observer != nil {
		tr.observer(len(tr.events)-1, e)
	}
}

// SetObserver installs a streaming subscriber invoked synchronously for
// every recorded event with its index — the conformance oracle's
// attachment point. One observer at a time; nil clears it.
func (tr *Trace) SetObserver(fn func(idx int, e Event)) { tr.observer = fn }

// Hooks returns sender hooks that feed this trace. now must report the
// simulation clock. The state-snapshot hook drives everything: legacy
// kinds (Send/Timeout/...) are synthesized from snapshots so each sender
// transition records exactly one event, enriched with the conformance
// fields.
func (tr *Trace) Hooks(now func() time.Duration) tcp.Hooks {
	return tcp.Hooks{
		OnState: func(st tcp.StateSnapshot) { tr.recordState(now(), st) },
	}
}

// recordState converts one sender state snapshot into a trace event.
func (tr *Trace) recordState(at time.Duration, st tcp.StateSnapshot) {
	e := Event{
		At:       at,
		Seq:      st.Seq,
		Payload:  int64(st.Payload),
		Ack:      st.AckNo,
		AckClass: int(st.AckClass),
		Cwnd:     int64(st.Cwnd),
		Ssthresh: int64(st.Ssthresh),
		SndUna:   st.SndUna,
		SndNxt:   st.SndNxt,
		SndMax:   st.SndMax,
		RTO:      st.RTO,
		Deadline: st.TimerDeadline,
		Shift:    st.BackoffShift,
		DupAcks:  st.DupAcks,
	}
	switch st.Kind {
	case tcp.StateSend:
		e.Kind = Send
		if st.Retransmit {
			e.Kind = Retransmit
		}
	case tcp.StateAck:
		e.Kind = AckIn
	case tcp.StateTimeout:
		e.Kind = Timeout
	case tcp.StateFastRetx:
		e.Kind = FastRetx
	case tcp.StateEBSN:
		e.Kind = EBSNReset
	case tcp.StateQuench:
		e.Kind = QuenchIn
	case tcp.StateECN:
		e.Kind = ECNEcho
	default:
		return
	}
	tr.record(e)
}

// BSHooks returns base-station hooks that feed this trace, interleaving
// ARQ and notification events with the sender's in one stream.
func (tr *Trace) BSHooks(now func() time.Duration) bs.Hooks {
	return bs.Hooks{
		OnARQAttempt: func(unit, pkt uint64, attempt int) {
			tr.record(Event{At: now(), Kind: ARQAttempt, Unit: unit, Pkt: pkt, Attempt: attempt})
		},
		OnARQFailure: func(unit, pkt uint64, attempt int) {
			tr.record(Event{At: now(), Kind: ARQFailure, Unit: unit, Pkt: pkt, Attempt: attempt})
		},
		OnARQAck: func(unit, pkt uint64) {
			tr.record(Event{At: now(), Kind: ARQAck, Unit: unit, Pkt: pkt})
		},
		OnARQDiscard: func(pkt uint64) {
			tr.record(Event{At: now(), Kind: ARQDiscard, Pkt: pkt})
		},
		OnNotify: func(kind packet.Kind, conn int) {
			k := EBSNSent
			if kind == packet.SourceQuench {
				k = QuenchSent
			}
			tr.record(Event{At: now(), Kind: k})
		},
		OnSnoopAdmit: func(seq int64) {
			tr.record(Event{At: now(), Kind: SnoopAdmit, Seq: seq})
		},
		OnSnoopRetx: func(seq int64, attempt int) {
			tr.record(Event{At: now(), Kind: SnoopRetx, Seq: seq, Attempt: attempt})
		},
		OnSnoopSuppress: func(ackNo int64) {
			tr.record(Event{At: now(), Kind: SnoopSuppress, Ack: ackNo})
		},
		OnSnoopEvict: func(seq int64) {
			tr.record(Event{At: now(), Kind: SnoopEvict, Seq: seq})
		},
	}
}

// MobileHook returns a sequenced-delivery observer (node.Mobile's
// SetSequencedHook) that records MHDeliver events carrying the link
// sequence number.
func (tr *Trace) MobileHook(now func() time.Duration) func(*packet.Packet) {
	return func(p *packet.Packet) {
		tr.record(Event{At: now(), Kind: MHDeliver, Seq: p.Seq, Unit: uint64(p.LinkSeq)})
	}
}

// Events returns the recorded events in order.
func (tr *Trace) Events() []Event {
	out := make([]Event, len(tr.events))
	copy(out, tr.events)
	return out
}

// Count reports how many events of the given kind were recorded.
func (tr *Trace) Count(kind EventKind) int {
	n := 0
	for _, e := range tr.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// SendsOf reports how many times the given packet number was put on the
// wire (1 = never retransmitted by the source).
func (tr *Trace) SendsOf(packetNo int64) int {
	n := 0
	for _, e := range tr.events {
		if (e.Kind == Send || e.Kind == Retransmit) && e.PacketNo == packetNo {
			n++
		}
	}
	return n
}

// CSV renders the send/retransmit events as the paper's scatter data:
// time_sec,packet_mod_90,kind — one row per transmission.
func (tr *Trace) CSV() string {
	var b strings.Builder
	b.WriteString("time_sec,packet_mod_90,kind\n")
	for _, e := range tr.events {
		if e.Kind != Send && e.Kind != Retransmit {
			continue
		}
		fmt.Fprintf(&b, "%.3f,%d,%s\n", e.At.Seconds(), e.PacketNo%PacketModulo, e.Kind)
	}
	return b.String()
}

// RenderASCII draws the scatter on a width x height character grid
// covering [0, horizon] seconds by [0, 90) packet numbers. Original sends
// draw '.', retransmissions 'o', and the x-axis is labeled in seconds.
func (tr *Trace) RenderASCII(width, height int, horizon time.Duration) string {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	if horizon <= 0 {
		horizon = time.Second
		for _, e := range tr.events {
			if e.At > horizon {
				horizon = e.At
			}
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, e := range tr.events {
		if e.Kind != Send && e.Kind != Retransmit {
			continue
		}
		if e.At > horizon {
			continue
		}
		x := int(float64(width-1) * float64(e.At) / float64(horizon))
		y := int(float64(height-1) * float64(e.PacketNo%PacketModulo) / float64(PacketModulo-1))
		row := height - 1 - y // origin bottom-left, like the paper
		mark := byte('.')
		if e.Kind == Retransmit {
			mark = 'o'
		}
		// Retransmission marks win over plain sends at the same cell.
		if grid[row][x] == ' ' || mark == 'o' {
			grid[row][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "packet number mod %d (top=%d)  '.' send  'o' source retransmission\n",
		PacketModulo, PacketModulo-1)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " 0%*s\n", width-1, fmt.Sprintf("%.0fs", horizon.Seconds()))
	return b.String()
}
