package sim

import (
	"math/rand"
	"testing"
	"time"
)

// Property test for the determinism contract's core clause: events
// scheduled for the same virtual instant fire in schedule (FIFO) order,
// and interleaving cancellations with scheduling — in any pattern — must
// not perturb the relative order of the survivors. The lazy-cancel heap
// makes this worth pinning: tombstones sit inside the heap until popped
// or compacted, and a compaction rebuilds the heap wholesale, so the
// property holds only because the (at, seq) key is unique and totally
// ordered. This runs under -race in CI via `make check`.

// TestFIFOWithinInstantUnderCancellation drives randomized rounds: each
// round schedules a batch of events at one shared instant (interleaved
// with cancellations of random earlier events, including mid-batch),
// then verifies the survivors fire exactly in schedule order.
func TestFIFOWithinInstantUnderCancellation(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New()

		type rec struct {
			ev        Event
			id        int
			cancelled bool
		}
		var scheduled []*rec
		var fired []int
		at := time.Duration(1+rng.Intn(10)) * time.Millisecond

		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r := &rec{id: i}
			r.ev = s.Schedule(at, func() { fired = append(fired, r.id) })
			scheduled = append(scheduled, r)
			// Interleave: sometimes cancel a random already-scheduled
			// event (possibly this one) before the next Schedule, so
			// cancellation and scheduling mix at the same instant.
			for rng.Intn(3) == 0 {
				victim := scheduled[rng.Intn(len(scheduled))]
				s.Cancel(victim.ev)
				victim.cancelled = true
			}
		}
		// A second wave at the same instant after the cancels: their seq
		// numbers are later, so they must fire after every first-wave
		// survivor.
		m := rng.Intn(10)
		for i := 0; i < m; i++ {
			r := &rec{id: n + i}
			r.ev = s.Schedule(at, func() { fired = append(fired, r.id) })
			scheduled = append(scheduled, r)
		}

		if err := s.RunAll(); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}

		var want []int
		for _, r := range scheduled {
			if !r.cancelled {
				want = append(want, r.id)
			}
		}
		if len(fired) != len(want) {
			t.Fatalf("seed %d: %d events fired, want %d (cancelled events fired, or survivors lost)",
				seed, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("seed %d: fire order %v, want schedule order %v", seed, fired, want)
			}
		}
	}
}

// TestFIFOAcrossCompaction forces the compaction sweep (cancelling well
// past compactMin tombstones) between two waves at the same instant and
// checks the survivors' order straddles the rebuild untouched.
func TestFIFOAcrossCompaction(t *testing.T) {
	s := New()
	var fired []int
	at := 5 * time.Millisecond

	var keep []int
	var evs []Event
	for i := 0; i < 4*compactMin; i++ {
		id := i
		evs = append(evs, s.Schedule(at, func() { fired = append(fired, id) }))
	}
	// Cancel three of every four — enough dead weight to trip compact().
	for i := range evs {
		if i%4 == 0 {
			keep = append(keep, i)
		} else {
			s.Cancel(evs[i])
		}
	}
	// Post-compaction wave at the same instant.
	for i := 0; i < 8; i++ {
		id := len(evs) + i
		s.Schedule(at, func() { fired = append(fired, id) })
		keep = append(keep, id)
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(fired) != len(keep) {
		t.Fatalf("%d events fired, want %d", len(fired), len(keep))
	}
	for i := range keep {
		if fired[i] != keep[i] {
			t.Fatalf("fire order diverges at %d: got %d, want %d", i, fired[i], keep[i])
		}
	}
}
