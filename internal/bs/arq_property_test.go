package bs

import (
	"fmt"
	"testing"
	"time"
)

// arqAuditor replays the hook stream against the ARQ contract: attempts
// per unit count 1, 2, 3, ... with no gaps; a unit that has been
// acknowledged is finished — any later attempt or ack-timeout for its ID
// is a recycled entry firing a stale timer; and a discarded packet's
// units must never produce another event (fresh re-admissions carry new
// unit IDs).
type arqAuditor struct {
	t        *testing.T
	attempts map[uint64]int    // live unit -> last attempt seen
	owner    map[uint64]uint64 // unit -> network packet
	done     map[uint64]bool   // units completed by a link ack
	dead     map[uint64]bool   // packets withdrawn by a discard
	events   int
}

func newARQAuditor(t *testing.T) *arqAuditor {
	return &arqAuditor{
		t:        t,
		attempts: map[uint64]int{},
		owner:    map[uint64]uint64{},
		done:     map[uint64]bool{},
		dead:     map[uint64]bool{},
	}
}

func (a *arqAuditor) hooks() Hooks {
	return Hooks{
		OnARQAttempt: func(unit, pkt uint64, attempt int) {
			a.events++
			if a.done[unit] {
				a.t.Fatalf("attempt %d on unit %d after its link ack: stale timer fire", attempt, unit)
			}
			if a.dead[pkt] {
				a.t.Fatalf("attempt %d on unit %d of discarded packet %d", attempt, unit, pkt)
			}
			if prev, ok := a.attempts[unit]; ok {
				if attempt != prev+1 {
					a.t.Fatalf("unit %d jumped from attempt %d to %d", unit, prev, attempt)
				}
			} else if attempt != 1 {
				a.t.Fatalf("unit %d entered tracking at attempt %d", unit, attempt)
			}
			a.attempts[unit] = attempt
			a.owner[unit] = pkt
		},
		OnARQFailure: func(unit, pkt uint64, attempt int) {
			a.events++
			if a.done[unit] {
				a.t.Fatalf("ack-timeout on unit %d after its link ack: stale timer fire", unit)
			}
			if a.dead[pkt] {
				a.t.Fatalf("ack-timeout on unit %d of discarded packet %d", unit, pkt)
			}
			if a.attempts[unit] != attempt {
				a.t.Fatalf("unit %d failed attempt %d but last transmission was attempt %d", unit, attempt, a.attempts[unit])
			}
		},
		OnARQAck: func(unit, pkt uint64) {
			a.events++
			if a.done[unit] {
				a.t.Fatalf("unit %d acknowledged twice", unit)
			}
			if _, ok := a.attempts[unit]; !ok {
				a.t.Fatalf("ack for unit %d that was never transmitted", unit)
			}
			a.done[unit] = true
		},
		OnARQDiscard: func(pkt uint64) {
			a.events++
			a.dead[pkt] = true
		},
	}
}

// pseudoBad is a deterministic hash of the transmission instant, giving a
// reproducible memoryless ~pct% loss process per seed without any shared
// RNG state.
func pseudoBad(seed int64, pct uint64) func(time.Duration) bool {
	return func(ts time.Duration) bool {
		x := uint64(ts)*0x9e3779b97f4a7c15 ^ uint64(seed)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x%100 < pct
	}
}

// TestARQRecycledEntryNeverFiresStaleTimer hammers the pooled attempt-
// state records: a small ARQ window over a heavily lossy channel churns
// entries through transmit -> timeout -> backoff -> retransmit -> ack or
// discard -> pool, across enough packets that every entry is recycled
// many times. The auditor fails the run on the first event that could
// only come from a stale timer. Run under -race in the conformance CI
// job, this also proves the recycling path is free of data races.
func TestARQRecycledEntryNeverFiresStaleTimer(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ch := scriptChannel{bad: pseudoBad(seed, 35)}
			cfg := Config{
				Scheme: LocalRecovery,
				MTU:    128,
				ARQ: ARQConfig{
					RTmax:      3,
					Window:     2,
					BackoffMax: 50 * time.Millisecond,
					AckTimeout: 150 * time.Millisecond,
				},
			}
			b := newBench(t, cfg, ch)
			audit := newARQAuditor(t)
			b.bs.SetHooks(audit.hooks())

			// Admit packets in staggered bursts so the window is always
			// churning: some packets complete, some are discarded mid-
			// flight, and their entries are immediately reused.
			for burst := 0; burst < 8; burst++ {
				at := time.Duration(burst) * 400 * time.Millisecond
				seq := int64(burst) * 4 * 536
				b.s.Schedule(at, func() {
					for i := int64(0); i < 4; i++ {
						b.bs.FromWired(b.dataPacket(seq + i*536))
					}
				})
			}
			if err := b.s.RunAll(); err != nil {
				t.Fatal(err)
			}
			if audit.events < 100 {
				t.Fatalf("only %d ARQ events; the scenario is not exercising recycling", audit.events)
			}
			// The churn must actually have completed and discarded work, or
			// the pool never recycled anything.
			if len(audit.done) == 0 {
				t.Error("no unit ever completed")
			}
			if b.bs.Stats().ARQDiscards == 0 && len(audit.done) < 20 {
				t.Errorf("too little churn: %d completions, %d discards",
					len(audit.done), b.bs.Stats().ARQDiscards)
			}
		})
	}
}
