package errmodel

import (
	"testing"
	"time"
)

func TestFaultWindowValidate(t *testing.T) {
	good := FaultWindow{Start: time.Second, Length: time.Second, BER: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
	bad := []FaultWindow{
		{Start: -time.Second, Length: time.Second, BER: 1},
		{Start: 0, Length: 0, BER: 1},
		{Start: 0, Length: time.Second, BER: -0.1},
		{Start: 0, Length: time.Second, BER: 1.1},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("invalid window accepted: %+v", w)
		}
	}
	if got := good.End(); got != 2*time.Second {
		t.Errorf("End() = %v", got)
	}
}

func TestOverlayNilBaseIsPerfectOutsideWindows(t *testing.T) {
	o, err := NewOverlay(nil, []FaultWindow{{Start: 10 * time.Second, Length: 5 * time.Second, BER: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if o.StateAt(time.Second) != Good {
		t.Error("outside the window: not Good")
	}
	if o.StateAt(12*time.Second) != Bad {
		t.Error("inside the window: not Bad")
	}
	if o.StateAt(15*time.Second) != Good {
		t.Error("window end is exclusive")
	}
	if got := o.ExpectedBitErrors(0, time.Second, 1000); got != 0 {
		t.Errorf("errors outside window = %v, want 0", got)
	}
	// Fully inside a BER=1 window: every bit is expected to err.
	if got := o.ExpectedBitErrors(11*time.Second, 12*time.Second, 1000); got != 1000 {
		t.Errorf("errors inside window = %v, want 1000", got)
	}
	// Half-overlapped transmission: half the bits are under the fault.
	if got := o.ExpectedBitErrors(9*time.Second, 11*time.Second, 1000); got != 500 {
		t.Errorf("errors half-in = %v, want 500", got)
	}
}

func TestOverlayDelegatesToBase(t *testing.T) {
	base, err := NewMarkov(Config{
		MeanGood: time.Second, MeanBad: time.Second,
		GoodBER: 0, BadBER: 1e-3, Deterministic: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOverlay(base, []FaultWindow{{Start: time.Hour, Length: time.Second, BER: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Far from the window the overlay is transparent.
	for _, at := range []time.Duration{0, 500 * time.Millisecond, 1500 * time.Millisecond} {
		if o.StateAt(at) != base.StateAt(at) {
			t.Errorf("StateAt(%v) diverges from the base process", at)
		}
	}
	wantErrs := base.ExpectedBitErrors(0, 2*time.Second, 10000)
	if got := o.ExpectedBitErrors(0, 2*time.Second, 10000); got != wantErrs {
		t.Errorf("ExpectedBitErrors diverges from the base: %v vs %v", got, wantErrs)
	}
}

func TestOverlayHighestBERWinsOnOverlap(t *testing.T) {
	o, err := NewOverlay(nil, []FaultWindow{
		{Start: 0, Length: 2 * time.Second, BER: 0.1},
		{Start: time.Second, Length: 2 * time.Second, BER: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ber, in := o.forcedAt(1500 * time.Millisecond); !in || ber != 0.5 {
		t.Errorf("forcedAt overlap = %v/%v, want 0.5/true", ber, in)
	}
}

func TestOverlayRejectsInvalidWindow(t *testing.T) {
	if _, err := NewOverlay(nil, []FaultWindow{{Start: 0, Length: -time.Second, BER: 1}}); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestOverlayZeroLengthTransmission(t *testing.T) {
	o, err := NewOverlay(nil, []FaultWindow{{Start: time.Second, Length: time.Second, BER: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.ExpectedBitErrors(1500*time.Millisecond, 1500*time.Millisecond, 100); got != 100 {
		t.Errorf("instantaneous transmission inside window = %v, want 100", got)
	}
	if got := o.ExpectedBitErrors(0, 0, 100); got != 0 {
		t.Errorf("instantaneous transmission outside window = %v, want 0", got)
	}
}
