// Package serve is wtcpd's core: a long-running HTTP query service
// over the governed experiment engine that defends itself under load
// instead of falling over.
//
//	POST /v1/run          execute one scenario (internal/scenario schema)
//	POST /v1/sweep        execute a campaign (internal/fleet manifest)
//	GET  /v1/advise       §4.1 packet-size recommendation for an error climate
//	GET  /v1/result/{fp}  fetch a previously computed result by fingerprint
//	GET  /healthz         engine heartbeat (experiment.HealthSnapshot schema)
//	GET  /metrics         Prometheus text exposition
//
// The robustness invariants, each pinned by an acceptance test:
//
//   - Bounded admission. At most Slots requests execute and QueueDepth
//     wait; everything past that is shed immediately with 429 and a
//     finite Retry-After derived from the live median run time. Load
//     never queues unboundedly.
//   - Content-addressed results. A request's fingerprint hashes exactly
//     its result-affecting content (seeds in; budgets and deadlines
//     out), the cache stores the precise response bytes, and concurrent
//     identical requests coalesce into one execution (single-flight).
//     A repeat answer is byte-identical to the fresh one.
//   - Deadline propagation. The client's deadline bounds the request
//     context and flows into each run's sim.Budget wall ceiling, so a
//     hung or pathological point cannot pin a slot.
//   - Taxonomy-driven shedding. Deterministic failures (protocol-bug,
//     panic) permanently fail their fingerprint with a repro-bundle
//     pointer; resource exhaustion cools down the whole scenario class
//     at admission (see breaker.go).
//   - Graceful drain. Drain stops admission, lets in-flight work finish
//     within a grace period, then cancels it; canceled work keeps its
//     journal entry (sweeps additionally keep every finished point in
//     their checkpoint) and a restarted server resumes and caches it.
//     Accepted work is never silently lost.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"wtcp/internal/core"
	"wtcp/internal/experiment"
	"wtcp/internal/scenario"
	"wtcp/internal/sim"
)

// maxDeadline caps client-requested deadlines so one request cannot
// reserve a slot for an afternoon.
const maxDeadline = 10 * time.Minute

// Config tunes the server. Zero values take the documented defaults.
type Config struct {
	// DataDir holds everything the server persists: the result cache
	// (results/), the accepted-work journal (pending/), point ledgers
	// (points-*.ckpt), and repro bundles (repro/). Required.
	DataDir string
	// Slots bounds concurrently executing requests (default 2).
	Slots int
	// QueueDepth bounds requests waiting for a slot (default 2*Slots).
	QueueDepth int
	// CacheBytes caps the result cache (default 256 MiB; negative
	// disables the cap).
	CacheBytes int64
	// DefaultDeadline bounds requests that name no deadline_ms
	// (default 2m).
	DefaultDeadline time.Duration
	// BreakerCooldown is how long a resource-exhausted scenario class
	// is rejected at admission (default 30s).
	BreakerCooldown time.Duration
	// Workers bounds per-point replication concurrency inside one
	// request (experiment.Options.Workers; default 1).
	Workers int
	// Retries is the engine per-replication retry budget (engine
	// semantics: 0 means the default of 1, negative disables).
	Retries int
	// Advise is the option class /v1/advise computes its packet-size
	// table under: Replications, BaseSeed, Transfer, PacketSizes, and
	// Retries/Checks/Oracle are honoured. A sweep campaign with the
	// same option class shares its point ledger, which is what lets
	// the advisor refine incrementally from cached sweep points.
	Advise experiment.Options
	// Health receives run telemetry and backs /healthz; a fresh
	// collector is created when nil.
	Health *experiment.Health
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Slots
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	return c
}

// Server is one wtcpd instance. Create with New, wire Handler into an
// http.Server, call Resume to pick up journaled work from a previous
// life, and Drain then Close on the way out.
type Server struct {
	cfg    Config
	health *experiment.Health
	cache  *diskCache
	jour   *journal
	adm    *admission
	brk    *breaker
	met    metrics

	// runCtx parents every execution; canceling it is the drain hammer.
	runCtx     context.Context
	cancelRuns context.CancelFunc

	mu       sync.Mutex
	draining bool
	flights  map[string]*flight
	ledgers  map[string]*experiment.Ledger
	wg       sync.WaitGroup

	// pointMu serializes the has-check-then-put window on shared point
	// ledgers so two overlapping sweeps cannot double-record one key.
	pointMu sync.Mutex
}

// New opens (or creates) the server state under cfg.DataDir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	cache, err := openDiskCache(filepath.Join(cfg.DataDir, "results"), cfg.CacheBytes)
	if err != nil {
		return nil, err
	}
	jour, err := openJournal(filepath.Join(cfg.DataDir, "pending"))
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "repro"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: repro dir: %w", err)
	}
	health := cfg.Health
	if health == nil {
		health = experiment.NewHealth()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		health:     health,
		cache:      cache,
		jour:       jour,
		adm:        newAdmission(cfg.Slots, cfg.QueueDepth),
		brk:        newBreaker(cfg.BreakerCooldown),
		runCtx:     ctx,
		cancelRuns: cancel,
		flights:    map[string]*flight{},
		ledgers:    map[string]*experiment.Ledger{},
	}, nil
}

// Health returns the server's heartbeat collector (for CLI status
// wiring).
func (s *Server) Health() *experiment.Health { return s.health }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/advise", s.handleAdvise)
	mux.HandleFunc("GET /v1/result/{fp}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// flight is one single-flight execution unit: the first request for a
// fingerprint creates it, concurrent identical requests join it, and
// its lifecycle is detached from any client's connection — a
// disconnected client does not kill accepted work, it just isn't there
// to read the answer (which is cached for /v1/result anyway).
type flight struct {
	fp   string
	done chan struct{}

	status     int
	body       []byte
	retryAfter int
	cacheState string
}

func newFlight(fp string) *flight {
	return &flight{fp: fp, done: make(chan struct{})}
}

func (f *flight) write(w http.ResponseWriter) {
	if f.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(f.retryAfter))
	}
	if f.cacheState != "" {
		w.Header().Set("X-Wtcpd-Cache", f.cacheState)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(f.status)
	w.Write(f.body)
}

// query is a parsed, validated, fingerprinted request ready to
// execute.
type query struct {
	kind        string
	fp          string
	class       string
	journalBody []byte
	deadline    time.Duration
	exec        func(ctx context.Context) outcome
}

// outcome is a terminal execution result plus its policy consequences.
type outcome struct {
	status     int
	body       []byte
	retryAfter int
	// cacheable marks a complete, deterministic answer worth storing.
	cacheable bool
	failed    bool
	// deadlineExpired marks a 504 (request deadline, not drain).
	deadlineExpired bool
	// keepJournal marks drain-interrupted work that must survive into
	// the next server life.
	keepJournal bool
	// permClass, when a fail-fast class, permanently fails this
	// fingerprint.
	permClass  core.FailureClass
	permReason string
	// tripClass cools down the whole scenario class at admission.
	tripClass bool
}

// serveQuery runs the shared pipeline: permanent breaker, cache,
// class cooldown, drain gate, then single-flight + admission +
// execution.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, q query) {
	if pf, ok := s.brk.permanent(q.fp); ok {
		s.met.rejectedBreaker.Add(1)
		writeError(w, http.StatusUnprocessableEntity, 0, errorBody{
			Error:       fmt.Sprintf("request is a recorded deterministic failure (%s): %s", pf.Class, pf.Reason),
			Class:       pf.Class,
			Fingerprint: q.fp,
			ReproDir:    pf.ReproDir,
		})
		return
	}
	if data, ok := s.cache.get(q.fp); ok {
		s.met.cacheHits.Add(1)
		writeCached(w, data, "hit")
		return
	}
	if remaining, cooling := s.brk.rejected(q.class); cooling {
		s.met.rejectedBreaker.Add(1)
		sec := int(math.Ceil(remaining.Seconds()))
		if sec < 1 {
			sec = 1
		}
		writeError(w, http.StatusServiceUnavailable, sec, errorBody{
			Error:         fmt.Sprintf("scenario class %q is cooling down after resource exhaustion", q.class),
			Class:         string(core.ClassResourceExhausted),
			Fingerprint:   q.fp,
			RetryAfterSec: sec,
		})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.rejectedDraining.Add(1)
		sec := s.retryAfterSec()
		writeError(w, http.StatusServiceUnavailable, sec, errorBody{
			Error: "server is draining", Fingerprint: q.fp, RetryAfterSec: sec,
		})
		return
	}
	if f, ok := s.flights[q.fp]; ok {
		s.mu.Unlock()
		s.awaitFlight(w, r, f)
		return
	}
	f := newFlight(q.fp)
	s.flights[q.fp] = f
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runFlight(f, q, false)
	s.awaitFlight(w, r, f)
}

// awaitFlight blocks until the flight settles or the client leaves.
// The flight is deliberately not tied to the client context: accepted
// work completes and caches even if nobody is left to read the answer.
func (s *Server) awaitFlight(w http.ResponseWriter, r *http.Request, f *flight) {
	select {
	case <-f.done:
		f.write(w)
	case <-r.Context().Done():
	}
}

// runFlight takes the flight through admission, journaling, execution,
// and policy bookkeeping. resumed marks journaled work from a previous
// server life (already accepted once — bypasses the queue bound and is
// never bounced with 429).
func (s *Server) runFlight(f *flight, q query, resumed bool) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.flights, f.fp)
		s.mu.Unlock()
		close(f.done)
	}()

	release, err := s.adm.acquire(s.runCtx, resumed)
	if err != nil {
		sec := s.retryAfterSec()
		if errors.Is(err, errBusy) {
			s.met.rejectedBusy.Add(1)
			f.status, f.retryAfter = http.StatusTooManyRequests, sec
			f.body = marshalError(errorBody{
				Error:         "all run slots and queue positions are busy",
				Fingerprint:   q.fp,
				RetryAfterSec: sec,
			})
		} else {
			// Drain started while this request was queued: it never held a
			// slot, so it was never accepted — shed it explicitly.
			s.met.rejectedDraining.Add(1)
			f.status, f.retryAfter = http.StatusServiceUnavailable, sec
			f.body = marshalError(errorBody{
				Error:         "server started draining while the request was queued",
				Fingerprint:   q.fp,
				RetryAfterSec: sec,
			})
		}
		return
	}
	defer release()

	// Holding a slot is the acceptance point: journal before executing,
	// so from here on the work either reaches a terminal answer or
	// survives into the next server life.
	if err := s.jour.put(pendingRequest{Kind: q.kind, Fingerprint: q.fp, Body: q.journalBody}); err != nil {
		s.met.failed.Add(1)
		f.status = http.StatusInternalServerError
		f.body = marshalError(errorBody{Error: err.Error(), Fingerprint: q.fp})
		return
	}
	s.met.accepted.Add(1)
	if resumed {
		s.met.resumed.Add(1)
	}
	s.met.executed.Add(1)

	d := q.deadline
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > maxDeadline {
		d = maxDeadline
	}
	ctx, cancel := context.WithTimeout(s.runCtx, d)
	out := q.exec(ctx)
	cancel()

	if out.keepJournal {
		s.met.drained.Add(1)
	} else {
		s.jour.remove(q.fp)
	}
	if out.cacheable {
		if err := s.cache.put(q.fp, out.body); err != nil {
			fmt.Fprintf(os.Stderr, "wtcpd: %v\n", err)
		}
		s.met.completed.Add(1)
	}
	if out.failed {
		s.met.failed.Add(1)
		if resumed {
			// Resumed work has no client waiting on the flight; a terminal
			// failure must at least reach the operator's log.
			fmt.Fprintf(os.Stderr, "wtcpd: resumed %s failed (HTTP %d): %s\n", f.fp[:12], out.status, out.body)
		}
	}
	if out.deadlineExpired {
		s.met.deadlines.Add(1)
	}
	if out.permClass != "" {
		s.brk.recordPermanent(q.fp, out.permClass, out.permReason, s.reproDir())
	}
	if out.tripClass {
		s.brk.tripClass(q.class)
	}
	f.status, f.body, f.retryAfter = out.status, out.body, out.retryAfter
	if out.cacheable {
		f.cacheState = "miss"
	}
}

// retryAfterSec derives the back-pressure hint from live telemetry:
// the median run time scaled by the queue ahead of a new arrival,
// floored at 1s and capped at an hour — always finite.
func (s *Server) retryAfterSec() int {
	med := s.health.MedianRunSeconds()
	if med <= 0 {
		med = 1
	}
	sec := int(math.Ceil(med * float64(s.adm.queued()+1) / float64(s.adm.slotCount())))
	if sec < 1 {
		sec = 1
	}
	if sec > 3600 {
		sec = 3600
	}
	return sec
}

func (s *Server) reproDir() string { return filepath.Join(s.cfg.DataDir, "repro") }

// pointLedger opens (or reuses) the shared point ledger for an option
// class. The axes are stripped from the class identity: point keys are
// self-describing (scheme, bad period, packet size), so any sweep or
// advise request whose result-affecting options match lands in the
// same file and warm-starts from every point anyone already computed.
func (s *Server) pointLedger(opt experiment.Options) (*experiment.Ledger, error) {
	lopt := experiment.Options{
		Replications: opt.Replications,
		BaseSeed:     opt.BaseSeed,
		Transfer:     opt.Transfer,
		Retries:      opt.Retries,
		Checks:       opt.Checks,
		Oracle:       opt.Oracle,
	}
	name := fingerprintOf(struct {
		Kind    string `json:"kind"`
		Options string `json:"options"`
	}{"points/v1", experiment.Fingerprint(lopt)})[:16]
	path := filepath.Join(s.cfg.DataDir, "points-"+name+".ckpt")
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.ledgers[path]; ok {
		return l, nil
	}
	l, err := experiment.OpenLedger(path, lopt)
	if err != nil {
		return nil, err
	}
	s.ledgers[path] = l
	return l, nil
}

// Resume re-executes every journaled request from a previous server
// life in the background (bypassing the queue bound — they were
// already accepted once). Sweeps warm-start from their point ledgers,
// so only unfinished points actually run. Returns how many requests
// were picked up.
func (s *Server) Resume() int {
	pend, err := s.jour.list()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wtcpd: resume: %v\n", err)
		return 0
	}
	n := 0
	for _, p := range pend {
		q, err := s.queryFromPending(p)
		if err != nil {
			// Journal predates a schema change; nothing can re-execute it.
			fmt.Fprintf(os.Stderr, "wtcpd: resume %s: %v\n", p.Fingerprint, err)
			s.jour.remove(p.Fingerprint)
			continue
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			break
		}
		if _, ok := s.flights[q.fp]; ok {
			s.mu.Unlock()
			continue
		}
		f := newFlight(q.fp)
		s.flights[q.fp] = f
		s.wg.Add(1)
		s.mu.Unlock()
		go s.runFlight(f, q, true)
		n++
	}
	return n
}

// queryFromPending rebuilds an executable query from a journal entry.
func (s *Server) queryFromPending(p pendingRequest) (query, error) {
	switch p.Kind {
	case "run":
		req, sf, err := ParseRunRequest(p.Body)
		if err != nil {
			return query{}, err
		}
		return s.runQuery(req, sf, p.Body), nil
	case "sweep":
		req, c, err := ParseSweepRequest(p.Body)
		if err != nil {
			return query{}, err
		}
		return s.sweepQuery(req, c, p.Body), nil
	case "advise":
		var body adviseBody
		if err := decodeStrict(p.Body, &body); err != nil {
			return query{}, err
		}
		bad, err := scenario.ParsePositiveDur("bad", body.Bad)
		if err != nil || bad <= 0 {
			return query{}, fmt.Errorf("serve: journaled advise query has no valid bad period")
		}
		return s.adviseQuery(bad), nil
	default:
		return query{}, fmt.Errorf("serve: unknown journaled request kind %q", p.Kind)
	}
}

// Drain gracefully winds the server down: admission stops (new
// requests answer 503), in-flight work gets until ctx expires to
// finish on its own, then everything still running is canceled —
// which, for engine work, means stopping at the next replication
// boundary with every finished sweep point already checkpointed and
// the request's journal entry retained for the next server life.
// Blocks until all flights settle.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelRuns()
		<-done
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close releases ledger locks. Call after Drain.
func (s *Server) Close() {
	s.cancelRuns()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.ledgers {
		l.Close()
	}
	s.ledgers = map[string]*experiment.Ledger{}
}

// ---- HTTP plumbing ----

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	body, err := readBody(r)
	if err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, 0, errorBody{Error: err.Error()})
		return
	}
	req, sf, err := ParseRunRequest(body)
	if err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, 0, errorBody{Error: err.Error()})
		return
	}
	s.serveQuery(w, r, s.runQuery(req, sf, body))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	body, err := readBody(r)
	if err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, 0, errorBody{Error: err.Error()})
		return
	}
	req, c, err := ParseSweepRequest(body)
	if err != nil {
		s.met.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, 0, errorBody{Error: err.Error()})
		return
	}
	s.serveQuery(w, r, s.sweepQuery(req, c, body))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !validFingerprint(fp) {
		writeError(w, http.StatusBadRequest, 0, errorBody{Error: "fingerprint must be a sha256 hex digest"})
		return
	}
	if data, ok := s.cache.get(fp); ok {
		s.met.cacheHits.Add(1)
		writeCached(w, data, "hit")
		return
	}
	s.mu.Lock()
	_, inFlight := s.flights[fp]
	s.mu.Unlock()
	if inFlight || s.jour.has(fp) {
		sec := s.retryAfterSec()
		writeError(w, http.StatusAccepted, sec, errorBody{
			Error:         "result is still being computed",
			Fingerprint:   fp,
			RetryAfterSec: sec,
		})
		return
	}
	writeError(w, http.StatusNotFound, 0, errorBody{
		Error:       "unknown fingerprint: never computed, or evicted from the result cache",
		Fingerprint: fp,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	data, err := s.health.SnapshotJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, 0, errorBody{Error: err.Error()})
		return
	}
	status := http.StatusOK
	if s.Draining() {
		w.Header().Set("X-Wtcpd-Draining", "true")
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, s.met.render(s))
}

func readBody(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		return nil, fmt.Errorf("serve: read request: %w", err)
	}
	if len(data) > maxRequestBody {
		return nil, fmt.Errorf("serve: request body exceeds %d bytes", maxRequestBody)
	}
	return data, nil
}

func writeCached(w http.ResponseWriter, data []byte, state string) {
	w.Header().Set("X-Wtcpd-Cache", state)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func writeError(w http.ResponseWriter, status, retryAfter int, e errorBody) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(marshalError(e))
}

// deadlineBudget layers the request deadline into the per-run resource
// budget, so a single hung replication is killed by the simulator's
// own wall-clock ceiling even before the context does.
func deadlineBudget(ctx context.Context) sim.Budget {
	if dl, ok := ctx.Deadline(); ok {
		if d := time.Until(dl); d > 0 {
			return sim.Budget{WallClock: d}
		}
	}
	return sim.Budget{}
}
