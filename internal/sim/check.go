package sim

import (
	"fmt"
	"time"
)

// This file adds runtime robustness machinery to the kernel: registered
// invariant checks executed periodically in virtual time, a built-in
// consistency check of the event heap itself, and a no-progress watchdog
// that halts a stalled simulation with a diagnostic snapshot instead of
// letting it burn events until the horizon.
//
// Checks are observational: a check function must not mutate simulation
// state. A failing check records a *CheckError on the simulator and stops
// the run; callers inspect Failure() after Run/Step return.

// CheckError reports a failed invariant check.
type CheckError struct {
	// Name identifies the registered check.
	Name string
	// At is the virtual time the violation was detected.
	At time.Duration
	// Err is the violation the check reported.
	Err error
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("sim: invariant %q violated at %v: %v", e.Name, e.At, e.Err)
}

// Unwrap exposes the underlying violation.
func (e *CheckError) Unwrap() error { return e.Err }

// StallError reports a watchdog abort: the progress metric did not change
// for at least the configured stall window.
type StallError struct {
	// At is the virtual time the stall was declared.
	At time.Duration
	// Since is the virtual time of the last observed progress change.
	Since time.Duration
	// Progress is the stuck progress value.
	Progress int64
	// Snapshot is the diagnostic state dump captured at abort time.
	Snapshot string
}

// Error implements error.
func (e *StallError) Error() string {
	msg := fmt.Sprintf("sim: watchdog: no progress since %v (aborted at %v, progress=%d)",
		e.Since, e.At, e.Progress)
	if e.Snapshot != "" {
		msg += "\n" + e.Snapshot
	}
	return msg
}

// check is one registered invariant.
type check struct {
	name string
	fn   func() error
}

// AddCheck registers an invariant under name. Registered checks run
// periodically once EnableChecks starts the runner, and on demand via
// CheckNow. fn must not mutate simulation state; it returns a non-nil
// error to report a violation.
func (s *Simulator) AddCheck(name string, fn func() error) {
	s.checks = append(s.checks, check{name: name, fn: fn})
}

// EnableChecks starts periodic execution of every registered check (plus
// the kernel's own event-heap consistency check) every interval of virtual
// time. A non-positive interval defaults to one second. On the first
// violation the simulator records a *CheckError (see Failure) and stops.
//
// The recurring check event keeps the queue non-empty, so a run driven by
// RunAll will not drain; drive checked simulations with Run(horizon) or a
// Step loop with an exit condition.
func (s *Simulator) EnableChecks(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	if s.checksOn {
		return
	}
	s.checksOn = true
	var tick func()
	tick = func() {
		if s.failure != nil {
			return // stop rescheduling once failed
		}
		if err := s.CheckNow(); err != nil {
			return
		}
		s.Schedule(interval, tick)
	}
	s.Schedule(interval, tick)
}

// CheckNow runs the kernel heap check and every registered check
// immediately. The first violation is recorded as the simulator's failure,
// stops the run, and is returned.
func (s *Simulator) CheckNow() error {
	if err := s.checkHeap(); err != nil {
		return s.fail("event-heap", err)
	}
	for _, c := range s.checks {
		if err := c.fn(); err != nil {
			return s.fail(c.name, err)
		}
	}
	return nil
}

// fail records the first failure and halts the run.
func (s *Simulator) fail(name string, err error) error {
	if s.failure == nil {
		s.failure = &CheckError{Name: name, At: s.now, Err: err}
		s.Stop()
	}
	return s.failure
}

// Fail lets an external monitor (e.g. the conformance oracle) record a
// failure under the given name and halt the run, exactly as a registered
// check would. Only the first failure is kept; it is returned either way.
func (s *Simulator) Fail(name string, err error) error { return s.fail(name, err) }

// Failure returns the invariant violation or watchdog stall that halted
// the simulation, or nil if none has been recorded.
func (s *Simulator) Failure() error { return s.failure }

// checkHeap verifies the pending-event heap's structural invariants: every
// event knows its own slot, every parent orders at or before its four
// children, nothing is scheduled in the past, and the tombstone count
// matches the lazily-cancelled events still occupying slots. A violation
// here is kernel corruption — timers could fire out of order or never.
func (s *Simulator) checkHeap() error {
	dead := 0
	a := s.queue.a
	for i, ev := range a {
		if ev == nil {
			return fmt.Errorf("nil event at heap index %d", i)
		}
		if int(ev.pos) != i {
			return fmt.Errorf("event at heap index %d records index %d", i, ev.pos)
		}
		if ev.at < s.now {
			return fmt.Errorf("event at heap index %d scheduled at %v, before now (%v)", i, ev.at, s.now)
		}
		if ev.dead {
			dead++
		}
		for child := 4*i + 1; child <= 4*i+4 && child < len(a); child++ {
			if eventLess(a[child], ev) {
				return fmt.Errorf("heap order violated between parent %d (t=%v seq=%d) and child %d (t=%v seq=%d)",
					i, ev.at, ev.seq, child, a[child].at, a[child].seq)
			}
		}
	}
	if dead != s.dead {
		return fmt.Errorf("tombstone count %d does not match %d dead events in the heap", s.dead, dead)
	}
	return nil
}

// StartWatchdog arms a no-progress watchdog: every stall of virtual time
// it samples progress(); if the value is unchanged since the previous
// sample, the simulator records a *StallError carrying snapshot() and
// stops. Detection latency is therefore between stall and 2*stall of
// virtual time. A non-positive stall is a no-op; snapshot may be nil.
//
// progress should be a monotone counter of useful work (e.g. acknowledged
// bytes); event counts are a poor choice because a livelocked simulation
// still fires events.
func (s *Simulator) StartWatchdog(stall time.Duration, progress func() int64, snapshot func() string) {
	if stall <= 0 || progress == nil {
		return
	}
	last := progress()
	lastChange := s.now
	var tick func()
	tick = func() {
		if s.failure != nil {
			return
		}
		cur := progress()
		if cur != last {
			last = cur
			lastChange = s.now
			s.Schedule(stall, tick)
			return
		}
		snap := ""
		if snapshot != nil {
			snap = snapshot()
		}
		s.failure = &StallError{At: s.now, Since: lastChange, Progress: cur, Snapshot: snap}
		s.Stop()
	}
	s.Schedule(stall, tick)
}

// Monotonic returns a check that fails when sample() returns a value
// smaller than any previously observed one — the sequence-number
// monotonicity invariant (snd_una, rcv_nxt, delivered-byte counters must
// never move backwards).
func Monotonic(label string, sample func() int64) func() error {
	prev := int64(0)
	seeded := false
	return func() error {
		cur := sample()
		if seeded && cur < prev {
			return fmt.Errorf("%s went backwards: %d -> %d", label, prev, cur)
		}
		prev = cur
		seeded = true
		return nil
	}
}

// Conservation returns a check that fails when have() exceeds limit() —
// the packet/byte conservation invariant (a hop cannot deliver more than
// was sent to it).
func Conservation(label string, limit, have func() int64) func() error {
	return func() error {
		l, h := limit(), have()
		if h > l {
			return fmt.Errorf("%s conservation violated: have %d, limit %d", label, h, l)
		}
		return nil
	}
}
