// Handoff study: the mobility problem the paper's related-work section
// opens with [Caceres & Iftode 94]. A mobile host crossing cells loses
// the packets queued at its old base station; plain TCP then waits out a
// retransmission timeout per crossing, while the fast-retransmit scheme
// (three duplicate acks sent right after reconnecting) resumes within a
// round trip.
//
//	go run ./examples/handoff
package main

import (
	"fmt"
	"log"

	"wtcp/internal/experiment"
	"wtcp/internal/handoff"
)

func main() {
	points, err := experiment.HandoffStudy(experiment.HandoffOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiment.RenderHandoffTable(
		"1MB transfers across 2 Mbps cells, 100ms handoff gap", points))

	// One concrete pair, with the per-handoff cost spelled out.
	plain, err := handoff.Run(handoff.Defaults(handoff.Plain))
	if err != nil {
		log.Fatal(err)
	}
	fr, err := handoff.Run(handoff.Defaults(handoff.FastRetransmit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dwell 1s: plain %.1fs (%d timeouts) vs fast-retransmit %.1fs (%d fast retransmits)\n",
		plain.Elapsed.Seconds(), plain.Timeouts, fr.Elapsed.Seconds(), fr.FastRetransmits)
	fmt.Printf("improvement: %.0f%% shorter transfer\n",
		100*(plain.Elapsed-fr.Elapsed).Seconds()/plain.Elapsed.Seconds())
}
