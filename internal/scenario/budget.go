// Package scenario holds the JSON plumbing shared by scenario-shaped
// inputs: wtcp-sim scenario files and wtcp-fleet campaign manifests
// both embed the same human-readable budget block, so its schema and
// validation live here once instead of drifting per CLI.
package scenario

import (
	"fmt"
	"time"

	"wtcp/internal/sim"
)

// Budget is the JSON shape of a resource budget:
//
//	"budget": {"max_events": 2000000, "max_virtual": "30m",
//	           "wall_clock": "1m", "max_heap_bytes": 268435456}
//
// Omitted fields impose no ceiling from the file (command-line budget
// flags and the default run budget still layer on top); durations
// accept "off" for explicitly unlimited.
type Budget struct {
	MaxEvents    int64  `json:"max_events"`
	MaxVirtual   string `json:"max_virtual"`
	WallClock    string `json:"wall_clock"`
	MaxHeapBytes int64  `json:"max_heap_bytes"`
}

// Build converts the JSON budget into sim's representation.
func (b Budget) Build() (sim.Budget, error) {
	out := sim.Budget{MaxEvents: b.MaxEvents, MaxHeapBytes: b.MaxHeapBytes}
	var err error
	if out.MaxVirtual, err = ParseBudgetDur("budget.max_virtual", b.MaxVirtual); err != nil {
		return sim.Budget{}, err
	}
	if out.WallClock, err = ParseBudgetDur("budget.wall_clock", b.WallClock); err != nil {
		return sim.Budget{}, err
	}
	return out, nil
}

// ParseBudgetDur parses an optional budget duration; "off" means
// explicitly unlimited (negative, which survives default layering).
func ParseBudgetDur(field, v string) (time.Duration, error) {
	if v == "off" {
		return -1, nil
	}
	return ParsePositiveDur(field, v)
}

// ParsePositiveDur parses an optional duration field that must be
// positive when present.
func ParsePositiveDur(field, v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("%s: %w (use a duration like \"4s\" or \"800ms\")", field, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("%s %v must be positive", field, d)
	}
	return d, nil
}
