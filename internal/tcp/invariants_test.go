package tcp

import (
	"math"
	"strings"
	"testing"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// newCheckedSender builds a minimal sender for invariant tests.
func newCheckedSender(t *testing.T) *Sender {
	t.Helper()
	s := sim.New()
	snd, err := NewSender(s, Config{
		MSS:    536,
		Window: 4 * units.KB,
		Total:  100 * units.KB,
	}, &packet.IDGen{}, func(*packet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	return snd
}

// TestCheckInvariantsHealthy: a freshly built sender holds every
// invariant.
func TestCheckInvariantsHealthy(t *testing.T) {
	snd := newCheckedSender(t)
	if err := snd.CheckInvariants(); err != nil {
		t.Errorf("fresh sender violates an invariant: %v", err)
	}
}

// TestCheckInvariantsTripsOnCorruption plays the broken toy protocol:
// each mutation below is a state no correct TCP can reach, and each must
// trip the corresponding check.
func TestCheckInvariantsTripsOnCorruption(t *testing.T) {
	tests := []struct {
		name   string
		corupt func(*Sender)
		want   string // substring of the violation
	}{
		{"NaN cwnd", func(s *Sender) { s.cwnd = math.NaN() }, "not finite"},
		{"infinite cwnd", func(s *Sender) { s.cwnd = math.Inf(1) }, "not finite"},
		{"cwnd below one segment", func(s *Sender) { s.cwnd = 10 }, "below one segment"},
		{"runaway cwnd", func(s *Sender) { s.cwnd = 1e9 }, "beyond any legal inflation"},
		{"negative ssthresh", func(s *Sender) { s.ssthresh = -1 }, "negative ssthresh"},
		{"snd_una past snd_nxt", func(s *Sender) { s.sndUna = s.sndNxt + 1 }, "snd_una"},
		{"negative snd_una", func(s *Sender) { s.sndUna = -1; s.sndNxt = -1 }, "sequence order"},
		{"snd_nxt past snd_max", func(s *Sender) { s.sndNxt = s.sndMax + 536 }, "snd_nxt"},
		{"snd_max past transfer", func(s *Sender) {
			s.sndMax = int64(s.cfg.Total) + 1
			s.sndNxt = s.sndMax
		}, "beyond"},
		{"avail past transfer", func(s *Sender) { s.avail = int64(s.cfg.Total) + 1 }, "available"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			snd := newCheckedSender(t)
			tt.corupt(snd)
			err := snd.CheckInvariants()
			if err == nil {
				t.Fatal("corrupted state passed the invariant check")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("violation %q does not mention %q", err, tt.want)
			}
		})
	}
}
