package queue

import (
	"testing"
	"testing/quick"

	"wtcp/internal/packet"
	"wtcp/internal/units"
)

func mkData(id uint64, payload units.ByteSize) *packet.Packet {
	return &packet.Packet{ID: id, Kind: packet.Data, Payload: payload}
}

func TestFIFOOrder(t *testing.T) {
	q := New(10)
	for i := uint64(1); i <= 5; i++ {
		if !q.Push(mkData(i, 100)) {
			t.Fatalf("push %d refused", i)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		p := q.Pop()
		if p == nil || p.ID != i {
			t.Fatalf("pop = %v, want id %d", p, i)
		}
	}
	if q.Pop() != nil {
		t.Error("pop from empty returned a packet")
	}
}

func TestDropTailAtCapacity(t *testing.T) {
	q := New(2)
	if !q.Push(mkData(1, 10)) || !q.Push(mkData(2, 10)) {
		t.Fatal("pushes within capacity refused")
	}
	if q.Push(mkData(3, 10)) {
		t.Error("push over capacity admitted")
	}
	if q.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", q.Dropped())
	}
	if q.Enqueued() != 2 {
		t.Errorf("Enqueued = %d, want 2", q.Enqueued())
	}
	// Popping frees a slot.
	q.Pop()
	if !q.Push(mkData(4, 10)) {
		t.Error("push after pop refused")
	}
}

func TestUnboundedQueue(t *testing.T) {
	q := New(0)
	for i := uint64(0); i < 10000; i++ {
		if !q.Push(mkData(i, 1)) {
			t.Fatal("unbounded queue refused a push")
		}
	}
	if q.Len() != 10000 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestByteAccounting(t *testing.T) {
	q := New(10)
	q.Push(mkData(1, 536)) // 576 on wire
	q.Push(mkData(2, 88))  // 128 on wire
	if q.Bytes() != 704 {
		t.Errorf("Bytes = %d, want 704", q.Bytes())
	}
	q.Pop()
	if q.Bytes() != 128 {
		t.Errorf("Bytes after pop = %d, want 128", q.Bytes())
	}
	q.Drain()
	if q.Bytes() != 0 {
		t.Errorf("Bytes after drain = %d, want 0", q.Bytes())
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := New(10)
	if q.Peek() != nil {
		t.Error("peek on empty returned a packet")
	}
	q.Push(mkData(1, 10))
	if p := q.Peek(); p == nil || p.ID != 1 {
		t.Fatal("peek wrong")
	}
	if q.Len() != 1 {
		t.Error("peek removed the packet")
	}
}

func TestPushFront(t *testing.T) {
	q := New(2)
	q.Push(mkData(1, 10))
	q.Push(mkData(2, 10))
	p := q.Pop()
	q.PushFront(p) // requeue at head even though queue is at limit
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if got := q.Pop(); got.ID != 1 {
		t.Errorf("head = %d, want 1", got.ID)
	}
	if got := q.Pop(); got.ID != 2 {
		t.Errorf("second = %d, want 2", got.ID)
	}
}

func TestPeak(t *testing.T) {
	q := New(10)
	for i := uint64(0); i < 7; i++ {
		q.Push(mkData(i, 1))
	}
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	q.Push(mkData(100, 1))
	if q.Peak() != 7 {
		t.Errorf("Peak = %d, want 7", q.Peak())
	}
}

func TestDrainOrder(t *testing.T) {
	q := New(0)
	for i := uint64(1); i <= 4; i++ {
		q.Push(mkData(i, 1))
	}
	out := q.Drain()
	if len(out) != 4 {
		t.Fatalf("drained %d, want 4", len(out))
	}
	for i, p := range out {
		if p.ID != uint64(i+1) {
			t.Errorf("drain[%d] = %d", i, p.ID)
		}
	}
	if q.Len() != 0 {
		t.Error("queue not empty after drain")
	}
}

func TestLimitAccessor(t *testing.T) {
	if New(5).Limit() != 5 {
		t.Error("Limit accessor wrong")
	}
}

// Property: for any sequence of pushes and pops, admitted packets come out
// in push order, and Len == admitted - popped.
func TestPropertyFIFO(t *testing.T) {
	f := func(ops []bool, limit uint8) bool {
		q := New(int(limit%8) + 1)
		var nextID uint64
		var admitted []uint64
		var popped int
		for _, push := range ops {
			if push {
				nextID++
				if q.Push(mkData(nextID, 1)) {
					admitted = append(admitted, nextID)
				}
			} else if p := q.Pop(); p != nil {
				if popped >= len(admitted) || p.ID != admitted[popped] {
					return false
				}
				popped++
			}
		}
		return q.Len() == len(admitted)-popped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
