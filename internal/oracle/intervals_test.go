package oracle

import "testing"

func TestIntervalSetAddAndCover(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	if !s.covers(10, 20) || !s.covers(12, 18) {
		t.Error("contained range not covered")
	}
	if s.covers(10, 25) || s.covers(5, 15) || s.covers(20, 30) {
		t.Error("uncovered range reported covered")
	}
	// Merge across the gap.
	s.add(20, 30)
	if !s.covers(10, 40) {
		t.Error("merged range not covered")
	}
	if len(s.spans) != 1 {
		t.Errorf("spans = %v, want one merged span", s.spans)
	}
}

func TestIntervalSetInsertBetweenSpans(t *testing.T) {
	var s intervalSet
	s.add(0, 1)
	s.add(50, 60)
	s.add(100, 110)
	s.add(10, 20) // lands between existing spans
	if len(s.spans) != 4 {
		t.Fatalf("spans = %v", s.spans)
	}
	if !s.covers(10, 20) || !s.covers(50, 60) || !s.covers(100, 110) {
		t.Errorf("existing spans corrupted: %v", s.spans)
	}
}

func TestIntervalSetPrune(t *testing.T) {
	var s intervalSet
	s.add(10, 30)
	s.add(40, 50)
	s.prune(25)
	if s.covers(10, 20) {
		t.Error("pruned bytes still covered")
	}
	if !s.covers(25, 30) || !s.covers(40, 50) {
		t.Error("surviving bytes lost")
	}
	s.prune(1000)
	if len(s.spans) != 0 {
		t.Errorf("spans after full prune: %v", s.spans)
	}
}

func TestIntervalSetEmptyAndDegenerate(t *testing.T) {
	var s intervalSet
	if !s.covers(5, 5) {
		t.Error("empty range must be trivially covered")
	}
	if s.covers(0, 1) {
		t.Error("empty set covers nothing")
	}
	s.add(7, 7) // empty insert is a no-op
	if len(s.spans) != 0 {
		t.Errorf("degenerate add stored %v", s.spans)
	}
}
