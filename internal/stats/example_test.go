package stats_test

import (
	"fmt"

	"wtcp/internal/stats"
)

// ExampleRunReplications aggregates independent seeded measurements the
// way every experiment harness in this repository does.
func ExampleRunReplications() {
	sample := stats.RunReplications(5, func(seed int64) float64 {
		// Stand-in for one simulation run keyed by its seed.
		return float64(seed * 2)
	})
	fmt.Printf("n=%d mean=%.1f min=%.0f max=%.0f\n",
		sample.N(), sample.Mean(), sample.Min(), sample.Max())
	// Output:
	// n=5 mean=6.0 min=2 max=10
}

// ExampleSample_RelStdDev computes the paper's reported dispersion
// quantity ("the standard deviation for all results presented is less
// than 4%").
func ExampleSample_RelStdDev() {
	var s stats.Sample
	for _, v := range []float64{9.8, 10.0, 10.2} {
		s.Add(v)
	}
	fmt.Printf("relative stddev: %.1f%%\n", 100*s.RelStdDev())
	// Output:
	// relative stddev: 2.0%
}
