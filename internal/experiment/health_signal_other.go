//go:build !unix

package experiment

import "io"

// NotifyOnSignal is a no-op on platforms without SIGUSR1; -status
// polling remains available everywhere.
func (h *Health) NotifyOnSignal(w io.Writer) (stop func()) {
	return func() {}
}
