package oracle_test

// Cross-protocol metamorphic gates for the zoo: instead of pinning
// absolute numbers, these tests pin the relations the literature argues
// from — a smarter loss-recovery state machine never does worse under
// random (non-congestion) loss, and snoop-style local recovery never
// does worse than leaving the wireless losses to the fixed host. Every
// run executes with the conformance oracle armed under its own variant
// profile, so a metamorphic regression and a protocol violation are both
// caught here, and every comparison shares seeds so the channels and
// fault draws are identical across the protocols being compared.

import (
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// meanGoodput averages goodput (and throughput, second return) over a few
// seeded replications of one config family.
func meanGoodput(t *testing.T, build func(seed int64) core.Config) (float64, float64) {
	t.Helper()
	const reps = 3
	good, tput := 0.0, 0.0
	for seed := int64(1); seed <= reps; seed++ {
		cfg := build(seed)
		cfg.Oracle = true
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: transfer did not complete", seed)
		}
		good += res.Summary.Goodput
		tput += res.Summary.ThroughputKbps
	}
	return good / reps, tput / reps
}

// TestGoodputOrderingUnderRandomLoss pins the recovery-sophistication
// chain: with random packet corruption on the wireless hop (a clean
// Gilbert channel plus i.i.d. chaos corruption — losses that signal
// nothing about congestion), goodput must respect
//
//	SACK >= NewReno >= Reno >= Tahoe
//
// within tolerance. Each upgrade in the chain only adds recovery
// machinery (fast recovery, partial-ACK holes, the scoreboard), so a
// violated relation means an upgrade made loss recovery *less*
// efficient. The tolerance absorbs the tie-heavy regime at test-sized
// transfers, where the variants often recover identically.
func TestGoodputOrderingUnderRandomLoss(t *testing.T) {
	const tol = 0.97 // a lower variant may beat a higher one by at most 3%
	order := []tcp.Variant{tcp.Tahoe, tcp.Reno, tcp.NewReno, tcp.SACKVariant}
	goodputs := make([]float64, len(order))
	for i, v := range order {
		v := v
		goodputs[i], _ = meanGoodput(t, func(seed int64) core.Config {
			cfg := core.WAN(bs.Basic, 576, 2*time.Second)
			cfg.TransferSize = 60 * units.KB
			cfg.Window = 16 * units.KB
			// Silence the Gilbert channel; all loss comes from the
			// i.i.d. corruption below, so none of it is congestion.
			cfg.Channel.GoodBER = 0
			cfg.Channel.BadBER = 0
			cfg.Chaos = &chaos.Config{Packets: []chaos.PacketFaults{
				{Link: chaos.WirelessDown, CorruptProb: 0.05},
			}}
			cfg.Variant = v
			cfg.Seed = seed
			return cfg
		})
	}
	for i := 1; i < len(order); i++ {
		if goodputs[i] < goodputs[i-1]*tol {
			t.Errorf("violated relation %v >= %v under random loss: goodput %.4f < %.4f (tolerance %.0f%%)",
				order[i], order[i-1], goodputs[i], goodputs[i-1], 100*(1-tol))
		}
	}
}

// TestSnoopAtLeastUnassistedBaseline pins [Balakrishnan 95]'s headline
// on the paper's own Gilbert channel, for every sender variant: local
// retransmission from the base-station cache hides wireless losses from
// the fixed host, so both goodput (fewer end-to-end retransmissions)
// and throughput (no coarse timeouts for link losses) must be at least
// the unassisted baseline's. The 5% tolerance covers seed noise; the
// actual margin is large.
func TestSnoopAtLeastUnassistedBaseline(t *testing.T) {
	const tol = 0.95
	for _, v := range []tcp.Variant{tcp.Tahoe, tcp.Reno, tcp.NewReno, tcp.SACKVariant} {
		v := v
		run := func(scheme bs.Scheme) (float64, float64) {
			return meanGoodput(t, func(seed int64) core.Config {
				cfg := core.WAN(scheme, 576, 4*time.Second)
				cfg.TransferSize = 40 * units.KB
				cfg.Variant = v
				cfg.Seed = seed
				return cfg
			})
		}
		baseGood, baseTput := run(bs.Basic)
		snoopGood, snoopTput := run(bs.Snoop)
		if snoopGood < baseGood*tol {
			t.Errorf("violated relation snoop >= basic for %v: goodput %.4f < %.4f", v, snoopGood, baseGood)
		}
		if snoopTput < baseTput*tol {
			t.Errorf("violated relation snoop >= basic for %v: throughput %.2f Kbps < %.2f Kbps", v, snoopTput, baseTput)
		}
	}
}
