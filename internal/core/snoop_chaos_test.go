package core

import (
	"fmt"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/trace"
	"wtcp/internal/units"
)

// snoopFaultPlans is the chaos grid for the snoop property tests: each
// entry perturbs one packet pathology (or a mix) on the links the snoop
// agent watches — corrupted data on the downlink fuels local
// retransmissions, duplicated and reordered ACKs on the uplink stress
// dupack suppression.
var snoopFaultPlans = []struct {
	name  string
	plan  *chaos.Config
}{
	{"corrupt-down", &chaos.Config{Packets: []chaos.PacketFaults{
		{Link: chaos.WirelessDown, CorruptProb: 0.1},
	}}},
	{"dup-up", &chaos.Config{Packets: []chaos.PacketFaults{
		{Link: chaos.WirelessUp, DupProb: 0.15},
	}}},
	{"reorder-up", &chaos.Config{Packets: []chaos.PacketFaults{
		{Link: chaos.WirelessUp, ReorderProb: 0.15, ReorderDelay: 20 * time.Millisecond},
	}}},
	{"dup-down", &chaos.Config{Packets: []chaos.PacketFaults{
		{Link: chaos.WirelessDown, DupProb: 0.15},
	}}},
	{"mixed", &chaos.Config{Packets: []chaos.PacketFaults{
		{Link: chaos.WirelessDown, CorruptProb: 0.05, DupProb: 0.05},
		{Link: chaos.WirelessUp, DupProb: 0.05, ReorderProb: 0.05, ReorderDelay: 10 * time.Millisecond},
	}}},
}

// TestSnoopPropertiesUnderChaos drives the snoop agent through the
// loss/duplication/reordering grid, several seeds per plan, and checks
// the cache-discipline invariants on every run:
//
//  1. the cache drains to zero by the end of a completed transfer —
//     every cached copy is eventually acked past or evicted at the cap;
//  2. no segment is locally retransmitted beyond the attempt cap
//     (trace SnoopRetx events carry the per-segment attempt counter);
//  3. dupack suppression never hides a genuine loss from the fixed-host
//     sender — the transfer still completes, and the run stays
//     oracle-clean under the snoop shadow rules.
//
// Run under -race via `make zoo-smoke`.
func TestSnoopPropertiesUnderChaos(t *testing.T) {
	cap := bs.SnoopConfig{}.WithDefaults().MaxLocalRetx
	for _, fp := range snoopFaultPlans {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", fp.name, seed), func(t *testing.T) {
				cfg := WAN(bs.Snoop, 576, 2*time.Second)
				cfg.TransferSize = 30 * units.KB
				cfg.Seed = seed
				cfg.Chaos = fp.plan
				cfg.CollectTrace = true
				cfg.Oracle = true
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if !res.Completed {
					t.Fatalf("transfer wedged (aborted=%v %s): a suppressed dupack or lost cache entry stalled the fixed host",
						res.Aborted, res.AbortReason)
				}
				if res.SnoopCacheLen != 0 {
					t.Errorf("snoop cache holds %d segments after completion; want a fully drained cache", res.SnoopCacheLen)
				}
				retx := 0
				for i, e := range res.Trace.Events() {
					if e.Kind != trace.SnoopRetx {
						continue
					}
					retx++
					if e.Attempt > cap {
						t.Errorf("event %d: segment %d locally retransmitted attempt %d, past the cap %d",
							i, e.Seq, e.Attempt, cap)
					}
				}
				if uint64(retx) != res.BS.SnoopLocalRetx {
					t.Errorf("trace shows %d local retransmissions, stats show %d", retx, res.BS.SnoopLocalRetx)
				}
				if n := res.Trace.Count(trace.SnoopSuppress); uint64(n) != res.BS.SnoopSuppressedDupAcks {
					t.Errorf("trace shows %d suppressed dupacks, stats show %d", n, res.BS.SnoopSuppressedDupAcks)
				}
			})
		}
	}
}

// TestSnoopChaosDeterminism replays one chaotic snoop run with a fixed
// seed: faults, suppressions, and local retransmissions must all land
// identically, or the golden gate and the property grid above are
// measuring noise.
func TestSnoopChaosDeterminism(t *testing.T) {
	once := func() *Result {
		cfg := WAN(bs.Snoop, 576, 2*time.Second)
		cfg.TransferSize = 30 * units.KB
		cfg.Seed = 11
		cfg.Chaos = snoopFaultPlans[4].plan // the mixed plan
		cfg.CollectTrace = true
		cfg.Oracle = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := once(), once()
	if d := trace.DiffEvents(a.Trace.Events(), b.Trace.Events(), 0); d != nil {
		t.Fatalf("two replays of one seed diverge: %v", d)
	}
	if a.BS != b.BS {
		t.Errorf("base-station counters differ across replays:\n%+v\n%+v", a.BS, b.BS)
	}
}
