package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// This file extends the fault-injection subsystem to the HTTP boundary
// of the wtcpd query service (internal/serve): adversarial client
// behaviour — malformed bodies, mid-request disconnects, slow-loris
// writes — decided deterministically per request from (config, seed),
// so a chaotic request storm is reproducible and the acceptance tests
// can pin exactly which requests misbehave. The guarantees wtcpd must
// keep under these faults (malformed never admits, a disconnected
// client's accepted work still completes and caches, overload sheds
// with 429 + finite Retry-After) are the ones its tests assert.

// ServeFault is the client behaviour chosen for one request.
type ServeFault int

const (
	// ServeNone sends the request normally.
	ServeNone ServeFault = iota
	// ServeMalformed truncates and corrupts the request body; the server
	// must answer 400 and never admit the request.
	ServeMalformed
	// ServeDisconnect abandons the request mid-flight (client context
	// canceled after the request is sent); accepted work must survive.
	ServeDisconnect
	// ServeSlowLoris trickles the request in after a hold, occupying the
	// connection without occupying a run slot.
	ServeSlowLoris
)

// String names the fault for logs and test failure messages.
func (f ServeFault) String() string {
	switch f {
	case ServeNone:
		return "none"
	case ServeMalformed:
		return "malformed"
	case ServeDisconnect:
		return "disconnect"
	case ServeSlowLoris:
		return "slow-loris"
	default:
		return fmt.Sprintf("serve-fault(%d)", int(f))
	}
}

// ServeFaults is a fault plan for a client request storm against wtcpd.
// Zero value injects nothing. Probabilities are evaluated in order
// (malformed, disconnect, slow) against one uniform draw per request,
// so they partition: their sum must not exceed 1.
type ServeFaults struct {
	// MalformedProb is the probability a request's body is corrupted
	// into undecodable bytes.
	MalformedProb float64 `json:"malformed_prob,omitempty"`
	// DisconnectProb is the probability the client walks away
	// mid-request.
	DisconnectProb float64 `json:"disconnect_prob,omitempty"`
	// SlowProb is the probability the client holds the request for
	// SlowMs before completing it.
	SlowProb float64 `json:"slow_prob,omitempty"`
	// SlowMs is the slow-loris hold, in milliseconds.
	SlowMs int64 `json:"slow_ms,omitempty"`
	// Seed drives the per-request fault choice; the same (plan, seed,
	// request index) always rolls the same fault.
	Seed int64 `json:"seed,omitempty"`
}

// Enabled reports whether the plan injects anything.
func (f *ServeFaults) Enabled() bool {
	return f != nil && (f.MalformedProb > 0 || f.DisconnectProb > 0 || f.SlowProb > 0)
}

// SlowHold returns the slow-loris hold duration.
func (f *ServeFaults) SlowHold() time.Duration { return time.Duration(f.SlowMs) * time.Millisecond }

// Validate rejects out-of-range knobs with messages that say how to fix
// the field.
func (f *ServeFaults) Validate() error {
	if f == nil {
		return nil
	}
	for _, p := range []struct {
		field string
		v     float64
	}{
		{"malformed_prob", f.MalformedProb}, {"disconnect_prob", f.DisconnectProb}, {"slow_prob", f.SlowProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: serve %s %v outside [0, 1]", p.field, p.v)
		}
	}
	if sum := f.MalformedProb + f.DisconnectProb + f.SlowProb; sum > 1 {
		return fmt.Errorf("chaos: serve fault probabilities sum to %v > 1; they partition one draw per request", sum)
	}
	if f.SlowMs < 0 {
		return fmt.Errorf("chaos: serve slow_ms %d is negative", f.SlowMs)
	}
	if f.SlowProb > 0 && f.SlowMs == 0 {
		return fmt.Errorf("chaos: serve slow_prob set but slow_ms is zero; give the hold duration")
	}
	return nil
}

// ParseServe decodes and validates a JSON serve fault plan. Unknown
// fields are rejected so a typoed knob fails loudly instead of silently
// injecting nothing.
func ParseServe(data []byte) (*ServeFaults, error) {
	var f ServeFaults
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("chaos: parse serve faults: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Roll decides the fault for request index i. Pure function of (plan,
// seed, i): no shared RNG state, so concurrent storm goroutines can
// roll their own requests and a rerun reproduces the same fault
// schedule exactly.
func (f *ServeFaults) Roll(i uint64) ServeFault {
	if !f.Enabled() {
		return ServeNone
	}
	x := serveMix(uint64(f.Seed)*0x9e3779b97f4a7c15 + i + 1)
	u := float64(x>>11) / (1 << 53)
	switch {
	case u < f.MalformedProb:
		return ServeMalformed
	case u < f.MalformedProb+f.DisconnectProb:
		return ServeDisconnect
	case u < f.MalformedProb+f.DisconnectProb+f.SlowProb:
		return ServeSlowLoris
	default:
		return ServeNone
	}
}

// Corrupt renders a malformed variant of body for a ServeMalformed
// request: a strict prefix, which for a JSON document is always
// undecodable (the top-level value is left unterminated), with the cut
// point varying by request index to cover different failure points in
// the decoder.
func (f *ServeFaults) Corrupt(body []byte, i uint64) []byte {
	x := serveMix(uint64(f.Seed) ^ (i+1)*0xbf58476d1ce4e5b9)
	if len(body) < 2 {
		return []byte("{")
	}
	cut := 1 + int(x%uint64(len(body)-1))
	return append([]byte(nil), body[:cut]...)
}

// serveMix is the standard splitmix64 finalizer: turns an identity into
// uniform bits without any shared generator.
func serveMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
