// Command wtcp-figures regenerates the paper's evaluation figures as
// terminal tables or CSV.
//
//	wtcp-figures -fig 7           # basic TCP throughput vs packet size
//	wtcp-figures -fig 8 -csv      # EBSN sweep, CSV to stdout
//	wtcp-figures -fig all -reps 5 # everything the paper reports
//
// Long campaigns can checkpoint: with -checkpoint, every finished sweep
// point is saved (atomic write-rename), SIGINT/SIGTERM stop the run
// cleanly at the next simulation boundary, and rerunning the same
// command resumes from the saved points with byte-identical output.
// Failed replications can be captured as repro bundles (-repro) for
// wtcp-repro to replay and shrink.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/experiment"
	"wtcp/internal/prof"
	"wtcp/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "wtcp-figures: interrupted; checkpointed points are saved, rerun to resume")
		} else {
			fmt.Fprintln(os.Stderr, "wtcp-figures:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("wtcp-figures", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figure to regenerate: 3|4|5|7|8|9|10|11|csdp|congestion|handoff|severity|all")
		reps       = fs.Int("reps", 5, "replications per data point")
		csv        = fs.Bool("csv", false, "emit CSV instead of tables")
		out        = fs.String("out", "", "directory to write per-figure CSV files into (implies CSV data)")
		seed       = fs.Int64("seed", 0, "base seed offset")
		checkpoint = fs.String("checkpoint", "", "checkpoint file: finished sweep points are saved here and an interrupted run resumes from them")
		workers    = fs.Int("workers", 1, "replications run concurrently per sweep point (results are identical for any value)")
		reproDir   = fs.String("repro", "", "directory to capture failed replications as wtcp-repro bundles")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")

		supervise   = fs.Bool("supervise", true, "quarantine pathological sweep points (reported on stderr) instead of failing the whole figure")
		maxEvents   = fs.Int64("max-events", 0, "per-run fired-event budget (0 = engine default, negative = unlimited)")
		maxVTime    = fs.Duration("max-vtime", 0, "per-run virtual-time budget (0 = none)")
		runDeadline = fs.Duration("run-deadline", 0, "per-run wall-clock deadline (0 = engine default, negative = unlimited)")
		maxHeap     = fs.Int64("max-heap", 0, "per-run heap ceiling in bytes (0 = none)")
		noRunBudget = fs.Bool("no-run-budget", false, "disable the default per-run event and wall-clock ceilings")
		statusPath  = fs.String("status", "", "write a health heartbeat JSON to this file while sweeping (poll it, or send SIGUSR1 for a stderr dump)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "wtcp-figures:", err)
		}
	}()
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	writeFile := func(name, body string) error {
		if *out == "" {
			return nil
		}
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		return nil
	}
	var sup *experiment.Supervisor
	if *supervise {
		sup = experiment.NewSupervisor()
	}
	health := experiment.NewHealth()
	defer health.Heartbeat(*statusPath, os.Stderr)()
	defer func() {
		for _, q := range sup.Quarantined() {
			fmt.Fprintf(os.Stderr, "quarantined: %s [%s after %d attempt(s)]: %s\n",
				q.Key, q.Class, q.Attempts, q.Reason)
		}
	}()
	opt := experiment.Options{
		Replications: *reps,
		BaseSeed:     *seed,
		Checkpoint:   *checkpoint,
		Workers:      *workers,
		ReproDir:     *reproDir,
		Supervise:    sup,
		RunBudget: sim.Budget{MaxEvents: *maxEvents, MaxVirtual: *maxVTime,
			WallClock: *runDeadline, MaxHeapBytes: *maxHeap},
		NoRunBudget: *noRunBudget,
		Health:      health,
	}
	want := func(names ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, n := range names {
			if *fig == n {
				return true
			}
		}
		return false
	}
	did := false

	if want("3", "4", "5") {
		did = true
		for _, tf := range []struct {
			name   string
			scheme bs.Scheme
		}{
			{"3", bs.Basic}, {"4", bs.LocalRecovery}, {"5", bs.EBSN},
		} {
			if !want(tf.name) {
				continue
			}
			r, err := experiment.TraceFigure(tf.scheme, 60*time.Second)
			if err != nil {
				return err
			}
			fmt.Printf("=== Figure %s: packet trace, %s, deterministic channel (good 10s / bad 4s) ===\n",
				tf.name, tf.scheme)
			if *csv {
				fmt.Print(r.Trace.CSV())
			} else {
				fmt.Print(r.Trace.RenderASCII(100, 30, 60*time.Second))
				fmt.Printf("source timeouts: %d, source retransmissions: %d, EBSN resets: %d\n\n",
					r.Summary.Timeouts, r.Sender.RetransSegments, r.Summary.EBSNResets)
			}
		}
	}

	if want("7") {
		did = true
		points, err := experiment.Fig7(ctx, opt)
		if err != nil {
			return err
		}
		if err := writeFile("fig7.csv", experiment.ThroughputCSV(points)); err != nil {
			return err
		}
		emit(*csv, experiment.ThroughputCSV(points),
			experiment.RenderThroughputTable(
				"=== Figure 7: Basic TCP (wide-area) — throughput (Kbps) vs packet size, mean good period 10s ===", points))
	}
	if want("8") {
		did = true
		points, err := experiment.Fig8(ctx, opt)
		if err != nil {
			return err
		}
		if err := writeFile("fig8.csv", experiment.ThroughputCSV(points)); err != nil {
			return err
		}
		emit(*csv, experiment.ThroughputCSV(points),
			experiment.RenderThroughputTable(
				"=== Figure 8: EBSN (wide-area) — throughput (Kbps) vs packet size, mean good period 10s ===", points))
	}
	if want("9") {
		did = true
		points, err := experiment.Fig9(ctx, opt)
		if err != nil {
			return err
		}
		if err := writeFile("fig9.csv", experiment.RetransCSV(points)); err != nil {
			return err
		}
		emit(*csv, experiment.RetransCSV(points),
			experiment.RenderRetransTable(
				"=== Figure 9: Basic TCP vs EBSN (wide-area) — data retransmitted, 100KB file ===", points))
	}
	if want("10", "11") {
		did = true
		points, err := experiment.LANStudy(ctx, opt)
		if err != nil {
			return err
		}
		if err := writeFile("fig10_11.csv", experiment.LANCSV(points)); err != nil {
			return err
		}
		emit(*csv, experiment.LANCSV(points),
			experiment.RenderLANTable(
				"=== Figures 10 & 11: Basic TCP vs EBSN (local-area) — throughput and data retransmitted vs mean bad period, 4MB file, mean good period 4s ===", points))
	}

	if want("csdp") {
		did = true
		points, err := experiment.CSDPStudy(experiment.CSDPOptions{Replications: *reps, BaseSeed: *seed})
		if err != nil {
			return err
		}
		if err := writeFile("csdp.csv", experiment.CSDPCSV(points)); err != nil {
			return err
		}
		emit(*csv, experiment.CSDPCSV(points),
			experiment.RenderCSDPTable(
				"=== Related work [Bhagwat 95]: FIFO vs round-robin vs CSDP, 4 connections sharing the radio ===", points))
	}
	if want("handoff") {
		did = true
		points, err := experiment.HandoffStudy(experiment.HandoffOptions{})
		if err != nil {
			return err
		}
		if err := writeFile("handoff.csv", experiment.HandoffCSV(points)); err != nil {
			return err
		}
		emit(*csv, experiment.HandoffCSV(points),
			experiment.RenderHandoffTable(
				"=== Related work [Caceres & Iftode 94]: plain TCP vs fast-retransmit-on-handoff ===", points))
	}
	if want("severity") {
		did = true
		points, err := experiment.SeverityStudy(experiment.SeverityOptions{Replications: *reps, BaseSeed: *seed})
		if err != nil {
			return err
		}
		table := experiment.RenderSeverityTable(
			"=== Paper conjecture (§1/§6): EBSN improvement grows as the link gets lossier ===", points)
		if err := writeFile("severity.csv", severityCSV(points)); err != nil {
			return err
		}
		emit(*csv, severityCSV(points), table)
	}
	if want("congestion") {
		did = true
		points, err := experiment.CongestionStudy(experiment.CongestionOptions{Replications: *reps, BaseSeed: *seed})
		if err != nil {
			return err
		}
		if err := writeFile("congestion.csv", experiment.CongestionCSV(points)); err != nil {
			return err
		}
		emit(*csv, experiment.CongestionCSV(points), experiment.RenderCongestionTable(
			"=== Future work (paper §6): EBSN vs basic TCP under wired cross-traffic, bad=2s ===", points))
	}

	if !did {
		return fmt.Errorf("unknown figure %q (expect 3|4|5|7|8|9|10|11|csdp|congestion|handoff|severity|all)", *fig)
	}
	return nil
}

func emit(csv bool, csvBody, table string) {
	if csv {
		fmt.Print(csvBody)
	} else {
		fmt.Println(strings.TrimRight(table, "\n"))
		fmt.Println()
	}
}

// severityCSV emits the severity ladder as CSV.
func severityCSV(points []experiment.SeverityPoint) string {
	var b strings.Builder
	b.WriteString("bad_period_sec,bad_ber,basic_kbps,ebsn_kbps,improvement_pct\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%.1f,%g,%.3f,%.3f,%.1f\n",
			p.MeanBad.Seconds(), p.BadBER, p.BasicKbps.Mean(), p.EBSNKbps.Mean(), p.ImprovementPct)
	}
	return b.String()
}
