// Command wtcp-report runs the full replication suite and emits a
// markdown report: every figure's table regenerated fresh, plus a
// claim-by-claim verdict list checking the paper's qualitative statements
// against the new measurements.
//
//	wtcp-report > replication.md
//	wtcp-report -quick          # CI-sized sweeps
//	wtcp-report -reps 10        # smoother curves
//
// The command exits non-zero if any checked claim fails to reproduce.
package main

import (
	"flag"
	"fmt"
	"os"

	"wtcp/internal/report"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-report:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, out *os.File) (int, error) {
	fs := flag.NewFlagSet("wtcp-report", flag.ContinueOnError)
	var (
		reps  = fs.Int("reps", 5, "replications per data point")
		quick = fs.Bool("quick", false, "CI-sized sweeps (smaller transfers, fewer points)")
		seed  = fs.Int64("seed", 0, "base seed offset")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	md, err := report.Generate(report.Options{
		Replications: *reps,
		Quick:        *quick,
		BaseSeed:     *seed,
	})
	if err != nil {
		return 1, err
	}
	fmt.Fprint(out, md)
	if !report.AllReproduced(md) {
		return 2, nil
	}
	return 0, nil
}
