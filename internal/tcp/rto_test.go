package tcp

import (
	"testing"
	"time"
)

func TestRTOBeforeAnySample(t *testing.T) {
	e := NewRTOEstimator(100*time.Millisecond, 3*time.Second, 64*time.Second)
	if got := e.RTO(); got != 3*time.Second {
		t.Errorf("initial RTO = %v, want 3s", got)
	}
	if e.SRTT() != 0 {
		t.Errorf("SRTT before samples = %v", e.SRTT())
	}
}

func TestFirstSampleInitializesEstimators(t *testing.T) {
	e := NewRTOEstimator(100*time.Millisecond, 3*time.Second, 64*time.Second)
	e.Sample(10) // 1s RTT
	if got := e.SRTT(); got != time.Second {
		t.Errorf("SRTT = %v, want 1s", got)
	}
	if got := e.RTTVar(); got != 500*time.Millisecond {
		t.Errorf("RTTVar = %v, want 500ms", got)
	}
	// RTO = srtt + 4*rttvar = 10 + 20 = 30 ticks = 3s.
	if got := e.RTO(); got != 3*time.Second {
		t.Errorf("RTO = %v, want 3s", got)
	}
	if e.Samples() != 1 {
		t.Errorf("Samples = %d", e.Samples())
	}
}

func TestEstimatorConvergesOnSteadyRTT(t *testing.T) {
	e := NewRTOEstimator(100*time.Millisecond, 3*time.Second, 64*time.Second)
	for i := 0; i < 100; i++ {
		e.Sample(8)
	}
	if got := e.SRTT(); got < 790*time.Millisecond || got > 810*time.Millisecond {
		t.Errorf("SRTT = %v, want ~800ms", got)
	}
	// Variance decays toward zero; RTO approaches srtt but stays above
	// the 2-tick floor.
	if got := e.RTO(); got < 200*time.Millisecond || got > 1200*time.Millisecond {
		t.Errorf("converged RTO = %v", got)
	}
}

func TestRTOFloorTwoTicks(t *testing.T) {
	e := NewRTOEstimator(100*time.Millisecond, 3*time.Second, 64*time.Second)
	for i := 0; i < 50; i++ {
		e.Sample(0) // sub-tick RTTs measure as zero on a coarse clock
	}
	if got := e.RTO(); got != 200*time.Millisecond {
		t.Errorf("RTO = %v, want 200ms floor", got)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	e := NewRTOEstimator(100*time.Millisecond, time.Second, 64*time.Second)
	e.Sample(10) // base RTO = 3s
	base := e.RTO()
	e.Backoff()
	if got := e.RTO(); got != 2*base {
		t.Errorf("after one backoff RTO = %v, want %v", got, 2*base)
	}
	for i := 0; i < 20; i++ {
		e.Backoff()
	}
	if e.BackoffShift() != 6 {
		t.Errorf("shift = %d, want cap 6", e.BackoffShift())
	}
	// 3s << 6 = 192s clamps to 64s.
	if got := e.RTO(); got != 64*time.Second {
		t.Errorf("capped RTO = %v, want 64s", got)
	}
}

func TestSampleResetsBackoff(t *testing.T) {
	e := NewRTOEstimator(100*time.Millisecond, time.Second, 64*time.Second)
	e.Sample(10)
	e.Backoff()
	e.Backoff()
	if e.BackoffShift() != 2 {
		t.Fatalf("shift = %d", e.BackoffShift())
	}
	e.Sample(10)
	if e.BackoffShift() != 0 {
		t.Errorf("shift after sample = %d, want 0 (Karn reset)", e.BackoffShift())
	}
}

func TestVarianceTracksJitter(t *testing.T) {
	steady := NewRTOEstimator(100*time.Millisecond, time.Second, 64*time.Second)
	jittery := NewRTOEstimator(100*time.Millisecond, time.Second, 64*time.Second)
	for i := 0; i < 200; i++ {
		steady.Sample(10)
		if i%2 == 0 {
			jittery.Sample(5)
		} else {
			jittery.Sample(15)
		}
	}
	if jittery.RTTVar() <= steady.RTTVar() {
		t.Errorf("jittery var %v not above steady var %v", jittery.RTTVar(), steady.RTTVar())
	}
	if jittery.RTO() <= steady.RTO() {
		t.Errorf("jittery RTO %v not above steady RTO %v", jittery.RTO(), steady.RTO())
	}
}

func TestTicksTruncate(t *testing.T) {
	e := NewRTOEstimator(100*time.Millisecond, time.Second, 64*time.Second)
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{99 * time.Millisecond, 0},
		{100 * time.Millisecond, 1},
		{199 * time.Millisecond, 1},
		{1 * time.Second, 10},
		{1050 * time.Millisecond, 10},
	}
	for _, tt := range tests {
		if got := e.Ticks(tt.d); got != tt.want {
			t.Errorf("Ticks(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := NewRTOEstimator(0, 0, 0)
	if e.Granularity() != DefaultGranularity {
		t.Errorf("granularity = %v", e.Granularity())
	}
	if e.RTO() != DefaultInitialRTO {
		t.Errorf("initial RTO = %v", e.RTO())
	}
}

func TestCoarseClockQuantization(t *testing.T) {
	// A 100ms-clock TCP measures a 340ms RTT as either 3 ticks: the
	// estimator must work on ticks, not raw durations.
	e := NewRTOEstimator(100*time.Millisecond, time.Second, 64*time.Second)
	e.Sample(e.Ticks(340 * time.Millisecond))
	if got := e.SRTT(); got != 300*time.Millisecond {
		t.Errorf("SRTT = %v, want 300ms (3 ticks)", got)
	}
}
