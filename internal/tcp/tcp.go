// Package tcp implements the transport endpoints of the study: a TCP-Tahoe
// bulk-data sender (slow start, congestion avoidance, fast retransmit,
// coarse-clock Jacobson/Karels RTT estimation, Karn backoff) and a
// cumulative-ACK sink, plus a Reno variant used as an ablation.
//
// The sender also implements the paper's two control-message responses:
//
//   - EBSN (Explicit Bad State Notification): re-arm the retransmission
//     timer with the *current* timeout value, leaving the RTT estimate and
//     backoff untouched — the appendix's set_rtx_timer() call.
//   - ICMP source quench: collapse the congestion window to one segment
//     without touching the timer (RFC 1122 §4.2.3.9 behaviour), the
//     comparator the paper shows does not prevent timeouts.
//
// The implementation is segment-based with byte windows, mirroring the ns
// Tahoe module the paper used: on a timeout or third duplicate ACK the
// sender sets snd_nxt back to snd_una and slow-starts (go-back-N driven by
// cumulative ACKs).
package tcp

import (
	"errors"
	"fmt"
	"time"

	"wtcp/internal/units"
)

// Variant selects the congestion-control flavour.
type Variant int

// Variants.
const (
	// Tahoe is the paper's TCP: loss (timeout or 3 dupacks) collapses
	// cwnd to one segment and re-enters slow start.
	Tahoe Variant = iota + 1
	// Reno adds fast recovery (cwnd halving with window inflation on
	// duplicate ACKs). Not used in the paper's experiments; provided as
	// an ablation.
	Reno
	// NewReno extends Reno with partial-ACK handling: a new ACK that does
	// not cover the whole pre-loss window retransmits the next missing
	// segment immediately instead of leaving fast recovery, repairing
	// multi-loss windows without timeouts.
	NewReno
	// SACKVariant is NewReno recovery plus the selective-acknowledgment
	// scoreboard: go-back-N passes skip ranges the receiver already holds.
	// Selecting it implies Config.SACK (and the sink must EnableSACK).
	SACKVariant
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Tahoe:
		return "tahoe"
	case Reno:
		return "reno"
	case NewReno:
		return "newreno"
	case SACKVariant:
		return "sack"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant resolves a wire name ("tahoe", "reno", "newreno", "sack")
// to a Variant.
func ParseVariant(name string) (Variant, error) {
	for _, v := range []Variant{Tahoe, Reno, NewReno, SACKVariant} {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("tcp: unknown variant %q (want tahoe, reno, newreno, or sack)", name)
}

// FastRecovery reports whether the variant inflates the window on
// duplicate ACKs instead of collapsing to one segment (Reno and its
// descendants).
func (v Variant) FastRecovery() bool {
	return v == Reno || v == NewReno || v == SACKVariant
}

// PartialAckRetransmit reports whether a partial ACK during fast recovery
// retransmits the next hole immediately and stays in recovery (NewReno
// and SACK) instead of deflating out (plain Reno).
func (v Variant) PartialAckRetransmit() bool {
	return v == NewReno || v == SACKVariant
}

// Scoreboard reports whether the variant keeps a SACK scoreboard.
func (v Variant) Scoreboard() bool { return v == SACKVariant }

// DupAckThreshold is the fast-retransmit trigger (three duplicate ACKs).
const DupAckThreshold = 3

// Config parameterizes a sender.
type Config struct {
	// MSS is the TCP payload per segment: the paper's "packet size" minus
	// the 40-byte header.
	MSS units.ByteSize
	// Window is the receiver's advertised window (4 KB in the paper's WAN
	// runs, 64 KB in the LAN runs). The send window is min(cwnd, Window).
	Window units.ByteSize
	// Total is the number of payload bytes to transfer (100 KB WAN, 4 MB
	// LAN).
	Total units.ByteSize
	// Granularity is the TCP clock tick (100 ms in the paper).
	Granularity time.Duration
	// InitialRTO is the timeout before any RTT sample exists.
	InitialRTO time.Duration
	// MaxRTO caps the backed-off timeout.
	MaxRTO time.Duration
	// Variant selects Tahoe (default) or Reno.
	Variant Variant
	// InitialCwnd is the starting congestion window in segments
	// (default 1).
	InitialCwnd int
	// Streaming makes the sender start with no data available; a relay
	// (e.g. the split-connection base station) grants bytes with
	// MakeAvailable as they arrive from upstream. When false the whole
	// transfer is available immediately.
	Streaming bool
	// SACK enables the selective-acknowledgment scoreboard: go-back-N
	// retransmission passes skip byte ranges the receiver has already
	// acknowledged selectively. Pair with Sink.EnableSACK. An ablation —
	// the paper's TCP predates SACK.
	SACK bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.MSS <= 0:
		return errors.New("tcp: MSS must be positive")
	case c.Window < c.MSS:
		return errors.New("tcp: window smaller than one segment")
	case c.Total <= 0:
		return errors.New("tcp: nothing to send")
	default:
		return nil
	}
}

// withDefaults fills unset optional fields.
func (c Config) withDefaults() Config {
	if c.Granularity <= 0 {
		c.Granularity = DefaultGranularity
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = DefaultInitialRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = DefaultMaxRTO
	}
	if c.Variant == 0 {
		c.Variant = Tahoe
	}
	if c.Variant.Scoreboard() {
		c.SACK = true
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 1
	}
	return c
}

// Stats accumulates sender-side counters for the paper's metrics.
type Stats struct {
	// SegmentsSent counts every Data segment handed to the network,
	// including retransmissions.
	SegmentsSent uint64
	// BytesSent counts network-layer bytes sent (payload + header),
	// including retransmissions — the denominator of goodput.
	BytesSent units.ByteSize
	// RetransSegments and RetransBytes count retransmissions only
	// (RetransBytes is the paper's "data retransmitted" series, network-
	// layer bytes).
	RetransSegments uint64
	RetransBytes    units.ByteSize
	// Timeouts counts retransmission-timer expiries.
	Timeouts uint64
	// FastRetransmits counts third-dupack triggers.
	FastRetransmits uint64
	// EBSNResets counts timer re-arms caused by EBSN messages.
	EBSNResets uint64
	// Quenches counts ICMP source-quench messages processed.
	Quenches uint64
	// ECNResponses counts window halvings triggered by ECN echoes.
	ECNResponses uint64
	// SACKSkippedSegments counts retransmissions avoided because the
	// scoreboard showed the receiver already held the data.
	SACKSkippedSegments uint64
	// AcksReceived and DupAcksReceived count inbound ACK processing.
	AcksReceived    uint64
	DupAcksReceived uint64
}

// StateKind names the sender transition a StateSnapshot describes.
type StateKind int

// State-snapshot kinds.
const (
	// StateSend is a segment emission (fresh or retransmission).
	StateSend StateKind = iota + 1
	// StateAck is the processing of one inbound cumulative ACK.
	StateAck
	// StateTimeout is a retransmission-timer expiry with data outstanding.
	StateTimeout
	// StateFastRetx is a third-duplicate-ACK fast retransmit.
	StateFastRetx
	// StateEBSN is the processing of an EBSN control message.
	StateEBSN
	// StateQuench is the processing of an ICMP source quench.
	StateQuench
	// StateECN is an ECN congestion echo that halved the window.
	StateECN
)

// AckClass classifies an inbound cumulative ACK.
type AckClass int

// ACK classes.
const (
	AckNone AckClass = iota
	// AckNew advances snd_una.
	AckNew
	// AckDup equals snd_una with data outstanding (a duplicate).
	AckDup
	// AckOld is below snd_una (stale; ignored).
	AckOld
	// AckInvalid acknowledges data never sent (dropped per RFC 793).
	AckInvalid
)

// StateSnapshot captures the sender's externally-checkable state right
// after one protocol transition. It is the conformance oracle's raw
// material: every field is post-transition, so a checker can verify the
// update rules of the Tahoe state machine event by event.
type StateSnapshot struct {
	// Kind names the transition.
	Kind StateKind
	// Seq and Payload describe the segment involved (sends); Retransmit
	// marks a resend of previously transmitted data. For StateSend the
	// sequence pointers are pre-advance (the segment is on the wire but
	// SndNxt/SndMax have not moved yet), so a fresh send always shows
	// Seq == SndMax.
	Seq        int64
	Payload    units.ByteSize
	Retransmit bool
	// AckNo and AckClass describe the inbound ACK (StateAck only).
	AckNo    int64
	AckClass AckClass
	// Cwnd and Ssthresh are the post-transition congestion state in bytes
	// (truncated from the sender's fractional accounting).
	Cwnd, Ssthresh units.ByteSize
	// SndUna, SndNxt, SndMax are the sequence pointers.
	SndUna, SndNxt, SndMax int64
	// RTO is the current retransmission timeout; TimerDeadline is the
	// virtual time the timer will fire, or negative when idle.
	RTO           time.Duration
	TimerDeadline time.Duration
	// BackoffShift is the Karn exponential-backoff exponent.
	BackoffShift int
	// DupAcks is the consecutive-duplicate-ACK counter.
	DupAcks int
}

// Hooks are optional observation points; any field may be nil. They exist
// for the tracer and for tests, and must not mutate sender state.
type Hooks struct {
	// OnSend fires for every segment handed to the network.
	OnSend func(seq int64, payload units.ByteSize, retransmit bool)
	// OnTimeout fires when the retransmission timer expires, with the
	// about-to-be-retransmitted sequence number.
	OnTimeout func(seq int64)
	// OnFastRetransmit fires on the third duplicate ACK.
	OnFastRetransmit func(seq int64)
	// OnEBSN fires when an EBSN re-arms the timer.
	OnEBSN func()
	// OnCwnd fires whenever the congestion window or threshold changes
	// (growth, collapse, recovery), for window-evolution traces.
	OnCwnd func(cwnd, ssthresh units.ByteSize)
	// OnState fires after every protocol transition with the sender's
	// post-transition state — the conformance oracle's event stream. It
	// subsumes the single-purpose hooks above but does not replace them:
	// each fires independently.
	OnState func(st StateSnapshot)
	// OnComplete fires once when the last byte is acknowledged.
	OnComplete func(at time.Duration)
}
