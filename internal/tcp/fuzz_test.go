package tcp

import (
	"testing"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/units"
)

// FuzzSenderAckStream throws arbitrary ack/control sequences at the
// sender and checks the state machine never desynchronizes: snd_una stays
// within [0, total], cwnd stays at least one MSS, and the transfer still
// completes once the network behaves. Runs as a seed-corpus test under
// plain `go test`; use `go test -fuzz=FuzzSenderAckStream` to explore.
func FuzzSenderAckStream(f *testing.F) {
	f.Add([]byte{0, 1, 2, 253, 254, 255}, []byte{1, 2, 3})
	f.Add([]byte{255, 255, 255, 0, 0, 0}, []byte{0})
	f.Add([]byte{7, 7, 7, 7, 7}, []byte{2, 2, 2})

	f.Fuzz(func(t *testing.T, ackBytes, kinds []byte) {
		cfg := Config{
			MSS:        536,
			Window:     4 * units.KB,
			Total:      10 * units.KB,
			InitialRTO: 500 * time.Millisecond,
		}
		l := newLoop(t, cfg, 10*time.Millisecond)
		l.snd.Start()
		if err := l.s.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		// Inject the fuzzed control stream.
		for i, b := range ackBytes {
			kind := packet.Ack
			if i < len(kinds) {
				switch kinds[i] % 4 {
				case 1:
					kind = packet.EBSN
				case 2:
					kind = packet.SourceQuench
				case 3:
					kind = packet.Data // ignored by the sender
				}
			}
			ackNo := int64(b) * 97 // scatter across and beyond the transfer
			l.snd.Receive(&packet.Packet{
				Kind:             kind,
				AckNo:            ackNo,
				CongestionMarked: b%5 == 0,
			})
			if una := l.snd.SndUna(); una < 0 || una > int64(cfg.Total) {
				t.Fatalf("snd_una desynchronized: %d", una)
			}
			if l.snd.Cwnd() < 536 {
				t.Fatalf("cwnd below one MSS: %d", l.snd.Cwnd())
			}
			if l.snd.SndNxt() < l.snd.SndUna() {
				t.Fatalf("snd_nxt %d behind snd_una %d", l.snd.SndNxt(), l.snd.SndUna())
			}
		}
		// Whatever the injection did, an honest network finishes the job.
		if err := l.s.Run(10 * time.Minute); err != nil {
			t.Fatal(err)
		}
		if !l.snd.Done() {
			t.Fatal("transfer did not complete after fuzzed control stream")
		}
		if l.sink.Delivered() != cfg.Total {
			t.Fatalf("delivered %d, want %d", l.sink.Delivered(), cfg.Total)
		}
	})
}
