package experiment

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/multiconn"
	"wtcp/internal/stats"
	"wtcp/internal/units"
)

// CSDPPoint is one (policy, bad period) cell of the related-work
// scheduling study (paper §2, [Bhagwat 95]).
type CSDPPoint struct {
	Policy        multiconn.Policy
	BadPeriod     time.Duration
	AggregateKbps *stats.Sample
	Fairness      *stats.Sample
	DiscardsAvg   float64
}

// CSDPOptions tunes the scheduling study.
type CSDPOptions struct {
	Connections  int
	Replications int
	Transfer     units.ByteSize
	BadPeriods   []time.Duration
	// Accuracy is the CSDP predictor accuracy (1.0 = oracle).
	Accuracy float64
	BaseSeed int64
}

func (o CSDPOptions) withDefaults() CSDPOptions {
	if o.Connections <= 0 {
		o.Connections = 4
	}
	if o.Replications <= 0 {
		o.Replications = 3
	}
	if len(o.BadPeriods) == 0 {
		o.BadPeriods = []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second}
	}
	if o.Accuracy <= 0 {
		o.Accuracy = 1.0
	}
	return o
}

// CSDPStudy runs the FIFO / round-robin / CSDP comparison across bad
// periods.
func CSDPStudy(opt CSDPOptions) ([]CSDPPoint, error) {
	opt = opt.withDefaults()
	var out []CSDPPoint
	for _, policy := range []multiconn.Policy{multiconn.FIFO, multiconn.RoundRobin, multiconn.CSDP} {
		for _, bad := range opt.BadPeriods {
			var agg, fair stats.Sample
			var discards uint64
			for seed := int64(1); seed <= int64(opt.Replications); seed++ {
				cfg := multiconn.LANDefaults(opt.Connections, policy, bad)
				cfg.PredictorAccuracy = opt.Accuracy
				cfg.Seed = opt.BaseSeed + seed
				if opt.Transfer > 0 {
					cfg.TransferSize = opt.Transfer
				}
				r, err := multiconn.Run(cfg)
				if err != nil {
					return nil, err
				}
				agg.Add(r.AggregateKbps)
				fair.Add(r.Fairness)
				discards += r.RadioDiscards
			}
			out = append(out, CSDPPoint{
				Policy:        policy,
				BadPeriod:     bad,
				AggregateKbps: &agg,
				Fairness:      &fair,
				DiscardsAvg:   float64(discards) / float64(opt.Replications),
			})
		}
	}
	return out, nil
}

// RenderCSDPTable formats the scheduling study.
func RenderCSDPTable(title string, points []CSDPPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s  %-10s  %-20s  %-10s  %-10s\n",
		"policy", "bad", "aggregate(Kbps)", "fairness", "discards")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s  %-10s  %-20s  %-10s  %-10.1f\n",
			p.Policy, p.BadPeriod,
			fmt.Sprintf("%.0f±%.0f%%", p.AggregateKbps.Mean(), 100*p.AggregateKbps.RelStdDev()),
			fmt.Sprintf("%.3f", p.Fairness.Mean()),
			p.DiscardsAvg)
	}
	return b.String()
}

// CSDPCSV emits the study as CSV.
func CSDPCSV(points []CSDPPoint) string {
	var b strings.Builder
	b.WriteString("policy,bad_period_sec,aggregate_kbps_mean,aggregate_kbps_stddev,fairness_mean,discards_avg\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%.1f,%.2f,%.2f,%.4f,%.1f\n",
			p.Policy, p.BadPeriod.Seconds(),
			p.AggregateKbps.Mean(), p.AggregateKbps.StdDev(),
			p.Fairness.Mean(), p.DiscardsAvg)
	}
	return b.String()
}
