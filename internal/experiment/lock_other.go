//go:build !unix

package experiment

// acquireFileLock is a no-op on platforms without flock; the
// concurrent-writer guard is advisory and unix-only.
func acquireFileLock(path string) (release func(), err error) {
	return func() {}, nil
}
