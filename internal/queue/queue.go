// Package queue provides the drop-tail FIFO used at every node's outbound
// interface. The base station's queue occupancy additionally drives the
// ICMP source-quench comparator, so the queue exposes occupancy counters.
package queue

import (
	"wtcp/internal/packet"
	"wtcp/internal/units"
)

// DropTail is a FIFO with a packet-count capacity; packets arriving to a
// full queue are dropped (tail drop), matching the router model in ns.
// The zero value is unusable; construct with New.
//
// Storage is a power-of-two ring buffer: Push/Pop/PushFront are O(1) and
// allocation-free once the ring has grown to the working occupancy, which
// matters because every packet on every link passes through one of these.
type DropTail struct {
	limit int
	// ring holds the queued packets at indices head..head+count-1, modulo
	// len(ring); len(ring) is always a power of two (or zero).
	ring  []*packet.Packet
	head  int
	count int
	bytes units.ByteSize

	enqueued uint64
	dropped  uint64
	peak     int
}

// New returns a queue holding at most limit packets. A non-positive limit
// means unbounded.
func New(limit int) *DropTail {
	return &DropTail{limit: limit}
}

// grow doubles the ring (minimum 8 slots), unwrapping the live window to
// the front of the new storage.
func (q *DropTail) grow() {
	n := len(q.ring) * 2
	if n == 0 {
		n = 8
	}
	ring := make([]*packet.Packet, n)
	for i := 0; i < q.count; i++ {
		ring[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
	}
	q.ring = ring
	q.head = 0
}

// Push appends p, or drops it and reports false if the queue is full.
func (q *DropTail) Push(p *packet.Packet) bool {
	if q.limit > 0 && q.count >= q.limit {
		q.dropped++
		return false
	}
	if q.count == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.count)&(len(q.ring)-1)] = p
	q.count++
	q.bytes += p.Size()
	q.enqueued++
	if q.count > q.peak {
		q.peak = q.count
	}
	return true
}

// Pop removes and returns the head, or nil if empty.
func (q *DropTail) Pop() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.count--
	q.bytes -= p.Size()
	return p
}

// Peek returns the head without removing it, or nil if empty.
func (q *DropTail) Peek() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	return q.ring[q.head]
}

// PushFront reinserts p at the head (used by ARQ when a transmission must
// be retried ahead of queued traffic). PushFront never drops: requeueing a
// packet that was already admitted must not lose it.
func (q *DropTail) PushFront(p *packet.Packet) {
	if q.count == len(q.ring) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.ring) - 1)
	q.ring[q.head] = p
	q.count++
	q.bytes += p.Size()
	if q.count > q.peak {
		q.peak = q.count
	}
}

// Len reports the number of queued packets.
func (q *DropTail) Len() int { return q.count }

// Bytes reports the total queued size.
func (q *DropTail) Bytes() units.ByteSize { return q.bytes }

// Limit reports the configured capacity (0 = unbounded).
func (q *DropTail) Limit() int { return q.limit }

// Dropped reports how many pushes were refused.
func (q *DropTail) Dropped() uint64 { return q.dropped }

// Enqueued reports how many pushes were admitted.
func (q *DropTail) Enqueued() uint64 { return q.enqueued }

// Peak reports the maximum occupancy seen.
func (q *DropTail) Peak() int { return q.peak }

// Drain empties the queue and returns the packets in order.
func (q *DropTail) Drain() []*packet.Packet {
	if q.count == 0 {
		return nil
	}
	out := make([]*packet.Packet, q.count)
	for i := 0; i < q.count; i++ {
		idx := (q.head + i) & (len(q.ring) - 1)
		out[i] = q.ring[idx]
		q.ring[idx] = nil
	}
	q.head = 0
	q.count = 0
	q.bytes = 0
	return out
}
