package trace

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"wtcp/internal/units"
)

// This file implements the canonical text encoding behind the golden-trace
// harness (cmd/wtcp-conformance): every event rendered as one line with a
// fixed field order, timestamps normalized to microsecond precision. The
// encoding is its own normal form — Encode(Decode(g)) == g — so committed
// goldens are byte-stable and drift diffs are line-addressable.

// goldenHeader identifies the format; bump the version when the field set
// changes so stale goldens fail loudly instead of diffing confusingly.
const goldenHeader = "wtcp-golden v1"

// Encode renders the trace in the canonical golden format.
func (tr *Trace) Encode() string { return EncodeEvents(tr.mss, tr.events) }

// EncodeEvents renders an event sequence in the canonical golden format.
func EncodeEvents(mss units.ByteSize, events []Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s mss=%d events=%d\n", goldenHeader, int64(mss), len(events))
	for _, e := range events {
		fmt.Fprintf(&b, "%s %s seq=%d len=%d ack=%d cls=%d una=%d nxt=%d max=%d cwnd=%d ssth=%d rto=%s dl=%s sh=%d dup=%d att=%d unit=%d pid=%d\n",
			encodeDuration(e.At), e.Kind,
			e.Seq, e.Payload, e.Ack, e.AckClass,
			e.SndUna, e.SndNxt, e.SndMax, e.Cwnd, e.Ssthresh,
			encodeDuration(e.RTO), encodeDuration(e.Deadline),
			e.Shift, e.DupAcks, e.Attempt, e.Unit, e.Pkt)
	}
	return b.String()
}

// DecodeEvents parses a canonical golden back into events. Timestamps come
// back at microsecond precision (the encoding's normal form). PacketNo is
// rederived from the header's MSS.
func DecodeEvents(data string) (units.ByteSize, []Event, error) {
	lines := strings.Split(strings.TrimRight(data, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return 0, nil, fmt.Errorf("trace: empty golden")
	}
	var mss, count int64
	if _, err := fmt.Sscanf(lines[0], goldenHeader+" mss=%d events=%d", &mss, &count); err != nil {
		return 0, nil, fmt.Errorf("trace: bad golden header %q: %w", lines[0], err)
	}
	if mss <= 0 {
		return 0, nil, fmt.Errorf("trace: golden header has non-positive mss %d", mss)
	}
	events := make([]Event, 0, len(lines)-1)
	for i, line := range lines[1:] {
		e, err := decodeLine(line, units.ByteSize(mss))
		if err != nil {
			return 0, nil, fmt.Errorf("trace: golden line %d: %w", i+2, err)
		}
		events = append(events, e)
	}
	if int64(len(events)) != count {
		return 0, nil, fmt.Errorf("trace: golden header promises %d events, file has %d", count, len(events))
	}
	return units.ByteSize(mss), events, nil
}

// decodeLine parses one event line.
func decodeLine(line string, mss units.ByteSize) (Event, error) {
	fields := strings.Fields(line)
	if len(fields) != 18 {
		return Event{}, fmt.Errorf("want 18 fields, got %d in %q", len(fields), line)
	}
	var e Event
	var err error
	if e.At, err = decodeDuration(fields[0]); err != nil {
		return Event{}, err
	}
	if e.Kind, err = ParseEventKind(fields[1]); err != nil {
		return Event{}, err
	}
	ints := map[string]*int64{
		"seq": &e.Seq, "len": &e.Payload, "ack": &e.Ack,
		"una": &e.SndUna, "nxt": &e.SndNxt, "max": &e.SndMax,
		"cwnd": &e.Cwnd, "ssth": &e.Ssthresh,
	}
	for _, f := range fields[2:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Event{}, fmt.Errorf("malformed field %q", f)
		}
		switch key {
		case "rto":
			if e.RTO, err = decodeDuration(val); err != nil {
				return Event{}, err
			}
		case "dl":
			if e.Deadline, err = decodeDuration(val); err != nil {
				return Event{}, err
			}
		case "cls", "sh", "dup", "att":
			n, perr := strconv.Atoi(val)
			if perr != nil {
				return Event{}, fmt.Errorf("field %q: %w", f, perr)
			}
			switch key {
			case "cls":
				e.AckClass = n
			case "sh":
				e.Shift = n
			case "dup":
				e.DupAcks = n
			case "att":
				e.Attempt = n
			}
		case "unit", "pid":
			n, perr := strconv.ParseUint(val, 10, 64)
			if perr != nil {
				return Event{}, fmt.Errorf("field %q: %w", f, perr)
			}
			if key == "unit" {
				e.Unit = n
			} else {
				e.Pkt = n
			}
		default:
			dst, ok := ints[key]
			if !ok {
				return Event{}, fmt.Errorf("unknown field %q", f)
			}
			n, perr := strconv.ParseInt(val, 10, 64)
			if perr != nil {
				return Event{}, fmt.Errorf("field %q: %w", f, perr)
			}
			*dst = n
		}
	}
	e.PacketNo = e.Seq / int64(mss)
	return e, nil
}

// Normalize rounds an event's timestamps to the encoding's microsecond
// normal form, so freshly-recorded events compare exactly against decoded
// goldens.
func Normalize(e Event) Event {
	e.At = roundMicro(e.At)
	e.RTO = roundMicro(e.RTO)
	e.Deadline = roundMicro(e.Deadline)
	return e
}

// NormalizeEvents applies Normalize to a copy of the slice.
func NormalizeEvents(events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		out[i] = Normalize(e)
	}
	return out
}

// roundMicro rounds to microsecond precision; negative values (the idle-
// timer sentinel) collapse to -1µs, matching the "-" encoding.
func roundMicro(d time.Duration) time.Duration {
	if d < 0 {
		return -time.Microsecond
	}
	return (d + 500*time.Nanosecond) / time.Microsecond * time.Microsecond
}

// encodeDuration renders a duration as whole seconds and microseconds
// ("12.345678"); negative durations (idle timers) render as "-".
func encodeDuration(d time.Duration) string {
	if d < 0 {
		return "-"
	}
	us := int64(roundMicro(d) / time.Microsecond)
	return fmt.Sprintf("%d.%06d", us/1e6, us%1e6)
}

// decodeDuration parses encodeDuration's output exactly.
func decodeDuration(s string) (time.Duration, error) {
	if s == "-" {
		return -time.Microsecond, nil
	}
	sec, frac, ok := strings.Cut(s, ".")
	if !ok || len(frac) != 6 {
		return 0, fmt.Errorf("malformed duration %q", s)
	}
	secs, err := strconv.ParseInt(sec, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed duration %q: %w", s, err)
	}
	us, err := strconv.ParseInt(frac, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed duration %q: %w", s, err)
	}
	return time.Duration(secs)*time.Second + time.Duration(us)*time.Microsecond, nil
}
