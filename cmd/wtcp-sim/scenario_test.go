package main

// Scenario-file parsing lives in internal/scenario (shared with wtcpd's
// request validation); its unit and fuzz tests moved there with it.
// These tests cover the wtcp-sim side: -config wiring into run().

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithConfigFile(t *testing.T) {
	path := writeScenario(t, `{"scheme": "ebsn", "mean_bad": "2s", "transfer_kb": 20}`)
	out, err := capture(t, func() error { return run([]string{"-config", path}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "scheme=ebsn") || !strings.Contains(out, "throughput") {
		t.Errorf("config-file run output:\n%s", out)
	}
}

func TestRunWithConfigFileReplications(t *testing.T) {
	path := writeScenario(t, `{"scheme": "basic", "transfer_kb": 20, "seed": 5}`)
	out, err := capture(t, func() error { return run([]string{"-config", path, "-reps", "3"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "sd ") {
		t.Errorf("replicated config run shows no deviation:\n%s", out)
	}
}

func TestRunWithBadConfigFile(t *testing.T) {
	path := writeScenario(t, `{"bogus": 1}`)
	if err := run([]string{"-config", path}); err == nil {
		t.Error("run accepted a scenario with an unknown field")
	}
}
