package sim

import (
	"math"
	"math/rand"
)

// RNG is the simulation's source of randomness. Every stochastic component
// (error channel, ARQ backoff) draws from an RNG derived from the
// scenario seed so that a run is reproducible from (config, seed) alone.
//
// RNG wraps math/rand.Rand rather than exposing it so the distributions the
// paper's model needs (exponential holding times, Poisson-thinned bit
// errors) live next to the kernel and are tested once.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator. Components should each own
// a child so that adding a new consumer does not perturb the draw sequence
// of existing ones.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Exp returns an exponentially distributed draw with the given mean.
// A non-positive mean returns zero.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Norm returns a standard-normal draw.
func (g *RNG) Norm() float64 { return g.r.NormFloat64() }

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// PoissonAtLeastOne reports whether a Poisson draw with the given mean is
// at least one, i.e. true with probability 1-exp(-mean). This is the
// corruption test for a transmission whose expected bit-error count is
// mean; sampling the indicator directly avoids generating the full count.
func (g *RNG) PoissonAtLeastOne(mean float64) bool {
	if mean <= 0 {
		return false
	}
	return g.r.Float64() < -math.Expm1(-mean)
}
