package core

import (
	"context"
	"errors"

	"wtcp/internal/errmodel"
	"wtcp/internal/link"
	"wtcp/internal/metrics"
	"wtcp/internal/node"
	"wtcp/internal/oracle"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/tcp"
	"wtcp/internal/trace"
	"wtcp/internal/units"
)

// runSplit executes the split-connection (I-TCP) baseline: the end-to-end
// connection is terminated at the base station and re-originated as an
// independent TCP over the wireless hop.
//
//	FH  ──wired TCP──▶  BS sink ─┐
//	FH  ◀────acks───────┘        │ relay (per-connection state!)
//	                             ▼
//	           BS wireless TCP sender ──▶ MH sink
//
// Two properties the paper criticizes are directly observable in the
// Result: the fixed host's connection completes before the mobile host
// has the data (acknowledgments no longer mean end-to-end delivery), and
// the base station holds per-connection transport state (the relay).
//
// The wireless-side connection uses segments that fit the wireless MTU,
// so no fragmentation occurs on the radio — the I-TCP argument for
// separating the two flow controls.
// The simulator is supplied by the caller (RunContext acquires it from
// the kernel pool and releases it when the run returns).
func runSplit(ctx context.Context, cfg Config, s *sim.Simulator) (*Result, error) {
	s.Bind(ctx)
	ids := &packet.IDGen{}
	rng := sim.NewRNG(cfg.Seed)

	channel, err := errmodel.NewMarkov(cfg.Channel, rng.Split())
	if err != nil {
		return nil, err
	}

	var (
		fhSender *tcp.Sender
		wsSender *tcp.Sender
		bsSink   *tcp.Sink
		mobile   *node.Mobile
	)

	// Wireless-side segment size: fit the MTU when fragmentation would
	// otherwise occur.
	wirelessPacket := cfg.PacketSize
	if cfg.MTU > 0 && wirelessPacket > cfg.MTU {
		wirelessPacket = cfg.MTU
	}

	wiredFwd, err := link.New(s, link.Config{
		Name: "wired-fwd", Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 50,
	}, nil, func(p *packet.Packet) {
		before := bsSink.Delivered()
		bsSink.Receive(p)
		if d := bsSink.Delivered() - before; d > 0 {
			wsSender.MakeAvailable(d)
		}
	})
	if err != nil {
		return nil, err
	}
	wiredRev, err := link.New(s, link.Config{
		Name: "wired-rev", Rate: cfg.WiredRate, Delay: cfg.WiredDelay, QueueLimit: 50,
	}, nil, func(p *packet.Packet) { fhSender.Receive(p) })
	if err != nil {
		return nil, err
	}
	wirelessDown, err := link.New(s, link.Config{
		Name: "wireless-down", Rate: cfg.WirelessRate, Delay: cfg.WirelessDelay,
		Overhead: cfg.WirelessOverhead, Channel: channel,
	}, rng.Split(), func(p *packet.Packet) { mobile.Receive(p) })
	if err != nil {
		return nil, err
	}
	wirelessUp, err := link.New(s, link.Config{
		Name: "wireless-up", Rate: cfg.WirelessRate, Delay: cfg.WirelessDelay,
		Overhead: cfg.WirelessOverhead, Channel: channel,
	}, rng.Split(), func(p *packet.Packet) { wsSender.Receive(p) })
	if err != nil {
		return nil, err
	}

	// Wired half: FH sender -> BS sink.
	bsSink, err = tcp.NewSink(s, cfg.Window, ids, func(p *packet.Packet) { wiredRev.Send(p) })
	if err != nil {
		return nil, err
	}
	fhSender, err = tcp.NewSender(s, tcp.Config{
		MSS:         cfg.MSS(),
		Window:      cfg.Window,
		Total:       cfg.TransferSize,
		Granularity: cfg.Granularity,
		InitialRTO:  cfg.InitialRTO,
		Variant:     cfg.Variant,
		SACK:        cfg.SACK,
	}, ids, func(p *packet.Packet) { wiredFwd.Send(p) })
	if err != nil {
		return nil, err
	}

	// Wireless half: BS sender -> MH sink, fed by the relay.
	mhSink, err := tcp.NewSink(s, cfg.Window, ids, func(p *packet.Packet) { wirelessUp.Send(p) })
	if err != nil {
		return nil, err
	}
	mobile, err = node.NewMobile(s, node.MobileConfig{}, ids, mhSink, func(p *packet.Packet) { wirelessUp.Send(p) })
	if err != nil {
		return nil, err
	}
	wsSender, err = tcp.NewSender(s, tcp.Config{
		MSS:         wirelessPacket - PaperHeader,
		Window:      cfg.Window,
		Total:       cfg.TransferSize,
		Granularity: cfg.Granularity,
		InitialRTO:  cfg.InitialRTO,
		Variant:     cfg.Variant,
		SACK:        cfg.SACK,
		Streaming:   true,
	}, ids, func(p *packet.Packet) { wirelessDown.Send(p) })
	if err != nil {
		return nil, err
	}
	if cfg.SACK || cfg.Variant.Scoreboard() {
		bsSink.EnableSACK()
		mhSink.EnableSACK()
	}

	// The collected trace follows the wireless half — the connection the
	// paper's figures observe.
	var tr *trace.Trace
	var cw *trace.CwndSeries
	if cfg.CollectTrace || cfg.Oracle {
		tr = trace.New(wirelessPacket - PaperHeader)
		hooks := tr.Hooks(s.Now)
		if cfg.CollectTrace {
			cw = trace.NewCwndSeries()
			hooks.OnCwnd = cw.Hook(s.Now)
		}
		wsSender.SetHooks(hooks)
	}
	if cfg.Oracle {
		// Each half is an independent TCP connection, so each gets its own
		// conformance checker under the run's variant profile. Neither half
		// uses link-level recovery or notifications, so those rule families
		// stay quiet (RTmax 0, no notification bookkeeping).
		splitOracle(s, tr, cfg.Variant, wirelessPacket-PaperHeader, cfg.Window)
		fhTr := trace.New(cfg.MSS())
		fhSender.SetHooks(fhTr.Hooks(s.Now))
		splitOracle(s, fhTr, cfg.Variant, cfg.MSS(), cfg.Window)
	}

	if cfg.Checks {
		s.AddCheck("fh-sender-state", fhSender.CheckInvariants)
		s.AddCheck("ws-sender-state", wsSender.CheckInvariants)
		s.AddCheck("fh-snd-una-monotonic", sim.Monotonic("fh snd_una", fhSender.SndUna))
		s.AddCheck("ws-snd-una-monotonic", sim.Monotonic("ws snd_una", wsSender.SndUna))
		s.AddCheck("mh-within-sent", sim.Conservation("in-order mobile bytes vs highest byte sent",
			wsSender.SndMax, mhSink.RcvNxt))
		s.EnableChecks(cfg.CheckInterval)
	}
	if stall := cfg.stallWindow(); stall > 0 {
		// Progress means bytes acknowledged over the wireless half — the
		// connection whose completion ends the run.
		s.StartWatchdog(stall, wsSender.SndUna, nil)
	}

	fhSender.Start()
	wsSender.Start()
	for !wsSender.Done() && s.Now() < cfg.Horizon && s.Failure() == nil {
		if ok, err := s.Step(); !ok || err != nil {
			break
		}
	}

	var stalled *sim.StallError
	if f := s.Failure(); f != nil && !errors.As(f, &stalled) {
		return nil, f
	}

	res := &Result{
		Config:        cfg,
		Completed:     wsSender.Done(),
		Events:        s.Fired(),
		Sender:        fhSender.Stats(),
		SplitWireless: statsPtr(wsSender.Stats()),
		Sink:          mhSink.Stats(),
		Mobile:        mobile.Stats(),
		WirelessDown:  wirelessDown.Stats(),
		WirelessUp:    wirelessUp.Stats(),
	}
	res.SplitWiredDone = fhSender.FinishedAt()
	res.Trace = tr
	res.Cwnd = cw
	if stalled != nil {
		res.Aborted = true
		res.AbortReason = stalled.Error()
	}
	elapsed := wsSender.FinishedAt()
	if !res.Completed {
		elapsed = s.Now()
	}
	// The wireless connection is the bottleneck and the paper's metrics
	// describe data arriving at the mobile host, so summarize that half;
	// retransmissions from both halves are combined so goodput reflects
	// total network effort.
	combined := wsSender.Stats()
	combined.BytesSent += fhSender.Stats().BytesSent
	combined.RetransBytes += fhSender.Stats().RetransBytes
	combined.Timeouts += fhSender.Stats().Timeouts
	res.Summary = metrics.Summarize(cfg.TransferSize, wirelessPacket-PaperHeader, combined, elapsed)
	// Goodput: count both halves' useful wire bytes against both halves'
	// transmissions.
	useful := metrics.WireBytes(cfg.TransferSize, cfg.MSS()) +
		metrics.WireBytes(cfg.TransferSize, wirelessPacket-PaperHeader)
	if combined.BytesSent > 0 {
		res.Summary.Goodput = float64(useful) / float64(combined.BytesSent)
		if res.Summary.Goodput > 1 {
			res.Summary.Goodput = 1
		}
	}
	return res, nil
}

func statsPtr(s tcp.Stats) *tcp.Stats { return &s }

// splitOracle subscribes a conformance checker to one half of a split
// connection. The first violation on either half halts the run.
func splitOracle(s *sim.Simulator, tr *trace.Trace, v tcp.Variant, mss, window units.ByteSize) {
	checker := oracle.New(oracle.Config{
		Variant: v,
		MSS:     mss,
		Window:  window,
	})
	tr.SetObserver(func(idx int, e trace.Event) {
		if viol := checker.Observe(idx, e); viol != nil {
			s.Fail("oracle", viol)
		}
	})
}
