package packet

import (
	"strings"
	"testing"
	"testing/quick"

	"wtcp/internal/units"
)

func TestSize(t *testing.T) {
	tests := []struct {
		name string
		p    Packet
		want units.ByteSize
	}{
		{"data 536B payload", Packet{Kind: Data, Payload: 536}, 576},
		{"data empty", Packet{Kind: Data}, 40},
		{"fragment is a raw chunk", Packet{Kind: Fragment, Payload: 128}, 128},
		{"short tail fragment", Packet{Kind: Fragment, Payload: 64}, 64},
		{"ack", Packet{Kind: Ack}, 40},
		{"link ack", Packet{Kind: LinkAck}, 40},
		{"ebsn", Packet{Kind: EBSN}, 40},
		{"quench", Packet{Kind: SourceQuench}, 40},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Size(); got != tt.want {
				t.Errorf("Size() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEnd(t *testing.T) {
	p := Packet{Kind: Data, Seq: 1000, Payload: 536}
	if got := p.End(); got != 1536 {
		t.Errorf("End() = %d, want 1536", got)
	}
}

func TestIsControl(t *testing.T) {
	control := map[Kind]bool{
		Data: false, Ack: false, Fragment: false,
		LinkAck: true, EBSN: true, SourceQuench: true,
	}
	for k, want := range control {
		p := Packet{Kind: k}
		if got := p.IsControl(); got != want {
			t.Errorf("IsControl(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Data, "DATA"},
		{Ack, "ACK"},
		{Fragment, "FRAG"},
		{LinkAck, "LACK"},
		{EBSN, "EBSN"},
		{SourceQuench, "QUENCH"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestPacketString(t *testing.T) {
	tests := []struct {
		name string
		p    Packet
		want []string
	}{
		{"data", Packet{ID: 7, Kind: Data, Seq: 100, Payload: 36}, []string{"DATA", "id=7", "seq=100"}},
		{"retransmit flagged", Packet{Kind: Data, Retransmit: true}, []string{"rtx"}},
		{"ack", Packet{ID: 3, Kind: Ack, AckNo: 576}, []string{"ACK", "ackno=576"}},
		{"fragment", Packet{Kind: Fragment, FragOf: 9, FragIndex: 1, FragCount: 5}, []string{"FRAG", "of=9", "2/5"}},
		{"linkack", Packet{Kind: LinkAck, AckNo: 12}, []string{"LACK", "for=12"}},
		{"ebsn", Packet{Kind: EBSN, ID: 2}, []string{"EBSN"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.String()
			for _, w := range tt.want {
				if !strings.Contains(got, w) {
					t.Errorf("String() = %q, missing %q", got, w)
				}
			}
		})
	}
}

func TestIDGenUniqueMonotonic(t *testing.T) {
	var g IDGen
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		id := g.Next()
		if id <= prev {
			t.Fatalf("IDs not strictly increasing: %d after %d", id, prev)
		}
		prev = id
	}
	if first := new(IDGen).Next(); first != 1 {
		t.Errorf("first ID = %d, want 1", first)
	}
}

// Property: non-fragment sizes are always >= HeaderSize, fragment size
// equals its chunk, and End-Seq equals Payload.
func TestPropertySizeAndSpan(t *testing.T) {
	f := func(kindRaw uint8, seq int32, payload uint16) bool {
		kinds := []Kind{Data, Ack, Fragment, LinkAck, EBSN, SourceQuench}
		p := Packet{
			Kind:    kinds[int(kindRaw)%len(kinds)],
			Seq:     int64(seq),
			Payload: units.ByteSize(payload),
		}
		if p.Kind == Fragment {
			if p.Size() != p.Payload {
				return false
			}
		} else if p.Size() < HeaderSize {
			return false
		}
		return p.End()-p.Seq == int64(p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
