package trace

import (
	"strings"
	"testing"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

func TestRecordAndPacketNumbers(t *testing.T) {
	tr := New(536)
	tr.Record(time.Second, Send, 0)
	tr.Record(2*time.Second, Send, 536)
	tr.Record(3*time.Second, Retransmit, 536)
	tr.Record(4*time.Second, Timeout, 536)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[1].PacketNo != 1 || evs[2].PacketNo != 1 {
		t.Errorf("packet numbers = %d, %d, want 1, 1", evs[1].PacketNo, evs[2].PacketNo)
	}
	if tr.Count(Send) != 2 || tr.Count(Retransmit) != 1 || tr.Count(Timeout) != 1 {
		t.Error("counts wrong")
	}
	if tr.SendsOf(1) != 2 {
		t.Errorf("SendsOf(1) = %d, want 2 (send + retransmit)", tr.SendsOf(1))
	}
	if tr.SendsOf(0) != 1 {
		t.Errorf("SendsOf(0) = %d, want 1", tr.SendsOf(0))
	}
}

func TestHooksFeedTrace(t *testing.T) {
	tr := New(536)
	now := time.Duration(0)
	h := tr.Hooks(func() time.Duration { return now })
	now = time.Second
	h.OnState(tcp.StateSnapshot{Kind: tcp.StateSend, Seq: 0, Payload: 536})
	now = 2 * time.Second
	h.OnState(tcp.StateSnapshot{Kind: tcp.StateSend, Seq: 0, Payload: 536, Retransmit: true})
	h.OnState(tcp.StateSnapshot{Kind: tcp.StateTimeout, Seq: 0})
	h.OnState(tcp.StateSnapshot{Kind: tcp.StateFastRetx, Seq: 536})
	h.OnState(tcp.StateSnapshot{Kind: tcp.StateEBSN})
	h.OnState(tcp.StateSnapshot{Kind: tcp.StateAck, AckNo: 536, AckClass: tcp.AckNew})
	if tr.Count(Send) != 1 || tr.Count(Retransmit) != 1 ||
		tr.Count(Timeout) != 1 || tr.Count(FastRetx) != 1 ||
		tr.Count(EBSNReset) != 1 || tr.Count(AckIn) != 1 {
		t.Errorf("hook-fed counts wrong: %+v", tr.Events())
	}
	if tr.Events()[0].At != time.Second {
		t.Error("hook did not use the clock callback")
	}
}

func TestStateSnapshotFieldsReachEvent(t *testing.T) {
	tr := New(536)
	h := tr.Hooks(func() time.Duration { return 5 * time.Second })
	h.OnState(tcp.StateSnapshot{
		Kind: tcp.StateAck, AckNo: 1072, AckClass: tcp.AckNew,
		Cwnd: 1608, Ssthresh: 4288,
		SndUna: 1072, SndNxt: 2144, SndMax: 2144,
		RTO: 3 * time.Second, TimerDeadline: 8 * time.Second,
		BackoffShift: 2, DupAcks: 1,
	})
	e := tr.Events()[0]
	if e.Kind != AckIn || e.Ack != 1072 || e.AckClass != int(tcp.AckNew) {
		t.Errorf("ack fields lost: %+v", e)
	}
	if e.Cwnd != 1608 || e.Ssthresh != 4288 ||
		e.SndUna != 1072 || e.SndNxt != 2144 || e.SndMax != 2144 {
		t.Errorf("congestion/sequence fields lost: %+v", e)
	}
	if e.RTO != 3*time.Second || e.Deadline != 8*time.Second || e.Shift != 2 || e.DupAcks != 1 {
		t.Errorf("timer fields lost: %+v", e)
	}
}

func TestBSHooksFeedTrace(t *testing.T) {
	tr := New(536)
	now := time.Duration(0)
	h := tr.BSHooks(func() time.Duration { return now })
	now = time.Second
	h.OnARQAttempt(7, 3, 1)
	h.OnARQFailure(7, 3, 1)
	h.OnARQAttempt(7, 3, 2)
	h.OnARQAck(7, 3)
	h.OnARQDiscard(4)
	h.OnNotify(packet.EBSN, 0)
	h.OnNotify(packet.SourceQuench, 0)
	if tr.Count(ARQAttempt) != 2 || tr.Count(ARQFailure) != 1 ||
		tr.Count(ARQAck) != 1 || tr.Count(ARQDiscard) != 1 ||
		tr.Count(EBSNSent) != 1 || tr.Count(QuenchSent) != 1 {
		t.Errorf("bs-hook counts wrong: %+v", tr.Events())
	}
	first := tr.Events()[0]
	if first.Unit != 7 || first.Pkt != 3 || first.Attempt != 1 {
		t.Errorf("arq fields lost: %+v", first)
	}
	mh := tr.MobileHook(func() time.Duration { return now })
	mh(&packet.Packet{Seq: 536, LinkSeq: 9})
	last := tr.Events()[len(tr.Events())-1]
	if last.Kind != MHDeliver || last.Seq != 536 || last.Unit != 9 {
		t.Errorf("mobile hook fields lost: %+v", last)
	}
}

func TestSetObserverStreamsEvents(t *testing.T) {
	tr := New(536)
	var idxs []int
	var kinds []EventKind
	tr.SetObserver(func(idx int, e Event) {
		idxs = append(idxs, idx)
		kinds = append(kinds, e.Kind)
	})
	tr.Record(time.Second, Send, 0)
	tr.Record(2*time.Second, Timeout, 0)
	tr.SetObserver(nil)
	tr.Record(3*time.Second, Send, 536)
	if len(idxs) != 2 || idxs[0] != 0 || idxs[1] != 1 {
		t.Errorf("observer indices = %v, want [0 1]", idxs)
	}
	if kinds[0] != Send || kinds[1] != Timeout {
		t.Errorf("observer kinds = %v", kinds)
	}
	if len(tr.Events()) != 3 {
		t.Error("clearing the observer must not stop recording")
	}
}

func TestCSVFormat(t *testing.T) {
	tr := New(100)
	tr.Record(1500*time.Millisecond, Send, 0)
	tr.Record(2*time.Second, Retransmit, 100*95) // packet 95 -> mod 90 = 5
	tr.Record(3*time.Second, Timeout, 0)         // not a transmission: excluded
	csv := tr.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2", len(lines))
	}
	if lines[0] != "time_sec,packet_mod_90,kind" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1.500,0,send" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "2.000,5,retransmit" {
		t.Errorf("row 2 = %q (mod-90 wraparound)", lines[2])
	}
}

func TestRenderASCII(t *testing.T) {
	tr := New(100)
	tr.Record(0, Send, 0)
	tr.Record(30*time.Second, Send, 100*89)  // top-right area
	tr.Record(15*time.Second, Retransmit, 0) // bottom middle
	out := tr.RenderASCII(60, 20, 30*time.Second)
	if !strings.Contains(out, ".") {
		t.Error("no send marks rendered")
	}
	if !strings.Contains(out, "o") {
		t.Error("no retransmission marks rendered")
	}
	if !strings.Contains(out, "30s") {
		t.Error("x-axis label missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 20 {
		t.Errorf("grid height = %d lines", len(lines))
	}
	// Retransmission at 15s packet 0 must be on the bottom row of the grid.
	bottom := lines[len(lines)-4] // last grid row before axis
	if !strings.Contains(bottom, "o") {
		t.Errorf("retransmit mark not on bottom row: %q", bottom)
	}
}

func TestRenderASCIIDefaults(t *testing.T) {
	tr := New(100)
	tr.Record(5*time.Second, Send, 0)
	// Degenerate sizes clamp; zero horizon auto-scales.
	out := tr.RenderASCII(1, 1, 0)
	if out == "" {
		t.Error("empty render")
	}
}

func TestEventKindStrings(t *testing.T) {
	names := map[EventKind]string{
		Send: "send", Retransmit: "retransmit", Timeout: "timeout",
		FastRetx: "fastretx", EBSNReset: "ebsn",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if EventKind(77).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestNewClampsBadMSS(t *testing.T) {
	tr := New(0)
	tr.Record(0, Send, 1234)
	if tr.Events()[0].PacketNo != 1234 {
		t.Error("zero MSS should fall back to 1")
	}
	_ = units.ByteSize(0)
}
