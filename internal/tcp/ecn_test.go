package tcp

import (
	"testing"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/units"
)

func TestSinkEchoesCongestionMark(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.Receive(&packet.Packet{Kind: packet.Data, Seq: 0, Payload: 536, CongestionMarked: true})
	if len(h.acks) != 1 {
		t.Fatal("no ack")
	}
	if !h.acks[0].CongestionMarked {
		t.Error("CE mark not echoed")
	}
	// The echo is one-shot: the next unmarked segment's ack is clean.
	h.sink.Receive(data(536, 536))
	if h.acks[1].CongestionMarked {
		t.Error("echo persisted past one ack")
	}
}

func TestSinkEchoSurvivesDelayedAcks(t *testing.T) {
	h := newSinkHarness(t, 4*units.KB)
	h.sink.EnableDelayedAcks(100 * time.Millisecond)
	h.sink.Receive(&packet.Packet{Kind: packet.Data, Seq: 0, Payload: 536, CongestionMarked: true})
	if err := h.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(h.acks) != 1 || !h.acks[0].CongestionMarked {
		t.Error("delayed ack lost the CE echo")
	}
}

func TestSenderHalvesOnECNEchoOncePerFlight(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 500 * units.KB
	l := newLoop(t, cfg, 50*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	cwndBefore := l.snd.Cwnd()
	if cwndBefore <= 2*536 {
		t.Fatalf("window did not open: %d", cwndBefore)
	}
	echo := &packet.Packet{Kind: packet.Ack, AckNo: l.snd.SndUna(), CongestionMarked: true}
	l.snd.Receive(echo)
	st := l.snd.Stats()
	if st.ECNResponses != 1 {
		t.Fatalf("ECNResponses = %d, want 1", st.ECNResponses)
	}
	if got := l.snd.Cwnd(); got >= cwndBefore {
		t.Errorf("cwnd %d not reduced from %d", got, cwndBefore)
	}
	// A second echo within the same flight is ignored.
	l.snd.Receive(&packet.Packet{Kind: packet.Ack, AckNo: l.snd.SndUna(), CongestionMarked: true})
	if got := l.snd.Stats().ECNResponses; got != 1 {
		t.Errorf("ECNResponses after same-flight echo = %d, want 1", got)
	}
	// Transfer still completes.
	if err := l.s.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Error("transfer did not complete after ECN responses")
	}
}

func TestECNDoesNotTouchTimer(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 500 * units.KB
	l := newLoop(t, cfg, 50*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := l.snd.timer.Deadline()
	// A pure window-halving echo arrives as a dupack (no ack advance);
	// the retransmission timer must be untouched.
	l.snd.Receive(&packet.Packet{Kind: packet.Ack, AckNo: l.snd.SndUna(), CongestionMarked: true})
	if l.snd.timer.Deadline() != deadline {
		t.Error("ECN echo moved the retransmission timer")
	}
}
