package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/sim"
)

func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, ClassNone},
		{"cancel", &sim.CancelError{At: 0, Err: context.Canceled}, ClassCanceled},
		{"ctx-canceled", context.Canceled, ClassCanceled},
		{"ctx-deadline", context.DeadlineExceeded, ClassCanceled},
		{"budget", &sim.BudgetError{Kind: sim.BudgetEvents, Limit: 1, Value: 1}, ClassResourceExhausted},
		{"check", &sim.CheckError{Name: "inv", Err: errors.New("boom")}, ClassProtocolBug},
		{"panic", &PanicError{Value: "boom"}, ClassPanic},
		{"stall", &sim.StallError{At: time.Second}, ClassTransient},
		{"unknown", errors.New("mystery"), ClassTransient},
		// Engine-side annotation must not change the class.
		{"wrapped-budget", fmt.Errorf("seed 7: %w", &sim.BudgetError{Kind: sim.BudgetWall}), ClassResourceExhausted},
		{"wrapped-check", fmt.Errorf("point x: %w", &sim.CheckError{Name: "oracle"}), ClassProtocolBug},
		{"wrapped-cancel", fmt.Errorf("rep 3: %w", context.Canceled), ClassCanceled},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify(%v) = %s, want %s", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestBudgetSurfacesThroughRun: a budgeted Config aborts with a
// *sim.BudgetError as the run error, classified resource-exhausted, and
// a run that stays within budget is bit-identical to an unbudgeted one.
func TestBudgetSurfacesThroughRun(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 10 * 1024

	base, err := Run(cfg)
	if err != nil {
		t.Fatalf("unbudgeted run: %v", err)
	}
	if !base.Completed {
		t.Fatal("unbudgeted run did not complete")
	}
	if base.Events == 0 {
		t.Fatal("Result.Events not populated")
	}

	// Generous ceilings: identical outcome, bit for bit.
	within := cfg
	within.Budget = sim.Budget{MaxEvents: int64(base.Events) * 10, WallClock: time.Minute}
	got, err := Run(within)
	if err != nil {
		t.Fatalf("budgeted run: %v", err)
	}
	got.Config = base.Config // only the Budget field differs, by construction
	if *got != *base {
		t.Fatalf("budgeted run diverged from unbudgeted run:\n got %+v\nwant %+v", got, base)
	}

	// A ceiling below the run's needs aborts with the typed error.
	starved := cfg
	starved.Budget = sim.Budget{MaxEvents: int64(base.Events) / 4}
	_, err = Run(starved)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("starved run returned %v, want *sim.BudgetError", err)
	}
	if be.Kind != sim.BudgetEvents {
		t.Fatalf("kind = %q, want events", be.Kind)
	}
	if Classify(err) != ClassResourceExhausted {
		t.Fatalf("Classify(%v) = %s, want resource-exhausted", err, Classify(err))
	}
}

// TestBudgetSurfacesThroughSplitRun: the split-connection runner is
// governed too.
func TestBudgetSurfacesThroughSplitRun(t *testing.T) {
	cfg := WAN(bs.SplitConnection, 576, 2*time.Second)
	cfg.TransferSize = 10 * 1024
	cfg.Budget = sim.Budget{MaxEvents: 50}
	_, err := Run(cfg)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("split run returned %v, want *sim.BudgetError", err)
	}
}

// TestEventStormChaosClassifiedResourceExhausted: the chaos layer's
// resource-exhaustion fault (an unbounded same-instant event storm)
// trips the event budget through a full topology run, and the failure
// classifies as resource-exhausted — the class that quarantines a sweep
// point. A benign (bounded) storm on the same scenario completes clean.
func TestEventStormChaosClassifiedResourceExhausted(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 10 * 1024
	cfg.Budget = sim.Budget{MaxEvents: 200_000}

	// Pathological: livelock at 1s, long before the transfer can finish.
	patho := cfg
	patho.Chaos = &chaos.Config{EventStorms: []chaos.EventStorm{{At: time.Second}}}
	_, err := Run(patho)
	var be *sim.BudgetError
	if !errors.As(err, &be) || be.Kind != sim.BudgetEvents {
		t.Fatalf("pathological run returned %v, want events *sim.BudgetError", err)
	}
	if got := Classify(err); got != ClassResourceExhausted {
		t.Fatalf("Classify = %s, want resource-exhausted", got)
	}

	// Benign: a bounded storm well within the event budget.
	benign := cfg
	benign.Chaos = &chaos.Config{EventStorms: []chaos.EventStorm{{At: time.Second, Count: 100, Spacing: time.Millisecond}}}
	res, err := Run(benign)
	if err != nil {
		t.Fatalf("benign storm run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("benign storm run did not complete (aborted=%v reason=%q)", res.Aborted, res.AbortReason)
	}
	if res.Chaos == nil || res.Chaos.EventStormEvents != 100 {
		t.Fatalf("chaos stats = %+v, want 100 storm events", res.Chaos)
	}
}
