package core

import (
	"context"
	"errors"

	"wtcp/internal/sim"
)

// This file is the supervision layer's failure taxonomy: every error a
// run can produce maps to one class, and the class — not the concrete
// error type — drives the experiment engine's policy. Transient
// failures are retried with a perturbed seed, protocol bugs fail fast
// and emit a repro bundle, resource exhaustion trips the per-point
// circuit breaker and quarantines the point, and cancellation
// propagates untouched. Keeping the mapping here, next to the error
// types' producers, means a new failure mode cannot silently land in
// the wrong policy: it must be placed in the table below.

// FailureClass partitions run failures by the policy they deserve.
type FailureClass string

const (
	// ClassNone is the class of a nil error.
	ClassNone FailureClass = "none"
	// ClassProtocolBug marks a correctness failure — an invariant
	// violation or a conformance-oracle rule breach. Retrying is lying:
	// the implementation is wrong, not unlucky. Fail fast, keep the
	// repro bundle.
	ClassProtocolBug FailureClass = "protocol-bug"
	// ClassTransient marks a failure that a different seed may avoid —
	// a watchdog stall (the scenario's faults wedged this particular
	// sample path) or an unrecognized error. Retried with a perturbed
	// seed.
	ClassTransient FailureClass = "transient"
	// ClassResourceExhausted marks a run halted by a resource budget
	// (events, virtual time, wall clock, or heap). Feeds the per-point
	// circuit breaker: a point that cannot run within budget is
	// quarantined, not silently dropped.
	ClassResourceExhausted FailureClass = "resource-exhausted"
	// ClassPanic marks a recovered panic — a bug by definition. Treated
	// like a protocol bug: fail fast with the bundle.
	ClassPanic FailureClass = "panic"
	// ClassCanceled marks the caller's context ending. Not a failure of
	// the run at all; it propagates and stops the sweep.
	ClassCanceled FailureClass = "canceled"
)

// Classify maps a run error to its failure class. It sees through
// wrapping (errors.As / errors.Is), so engine-side annotation of run
// errors never changes their class.
func Classify(err error) FailureClass {
	if err == nil {
		return ClassNone
	}
	var (
		cancelErr *sim.CancelError
		budgetErr *sim.BudgetError
		checkErr  *sim.CheckError
		stallErr  *sim.StallError
		panicErr  *PanicError
	)
	switch {
	case errors.As(err, &cancelErr),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return ClassCanceled
	case errors.As(err, &budgetErr):
		return ClassResourceExhausted
	case errors.As(err, &checkErr):
		return ClassProtocolBug
	case errors.As(err, &panicErr):
		return ClassPanic
	case errors.As(err, &stallErr):
		return ClassTransient
	default:
		// Unrecognized errors get the benefit of the doubt: a perturbed
		// seed costs one retry, and a deterministic failure still ends
		// up quarantined (never dropped) once retries are exhausted.
		return ClassTransient
	}
}
