package chaos

import (
	"strings"
	"testing"
	"time"

	"wtcp/internal/link"
	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// fullPlanJSON exercises every section of the on-disk form.
const fullPlanJSON = `{
	"blackouts": [{"link": "wireless-down", "at": "5s", "length": "3s"}],
	"storms":    [{"link": "wired-fwd", "at": "10s", "length": "2s", "loss_prob": 0.3}],
	"crashes":   [{"at": "20s", "downtime": "2s"}],
	"notify":    {"loss_prob": 0.5, "dup_prob": 0.1, "delay_prob": 0.2, "delay": "300ms"},
	"packets":   [{"link": "wireless-up", "corrupt_prob": 0.01, "dup_prob": 0.01,
	               "reorder_prob": 0.02, "reorder_delay": "50ms"}]
}`

func TestParseFullPlan(t *testing.T) {
	cfg, err := Parse([]byte(fullPlanJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Enabled() {
		t.Error("full plan reports disabled")
	}
	if len(cfg.Blackouts) != 1 || cfg.Blackouts[0].Link != WirelessDown ||
		cfg.Blackouts[0].At != 5*time.Second || cfg.Blackouts[0].Length != 3*time.Second {
		t.Errorf("blackouts = %+v", cfg.Blackouts)
	}
	if len(cfg.Storms) != 1 || cfg.Storms[0].LossProb != 0.3 {
		t.Errorf("storms = %+v", cfg.Storms)
	}
	if len(cfg.Crashes) != 1 || cfg.Crashes[0].Downtime != 2*time.Second {
		t.Errorf("crashes = %+v", cfg.Crashes)
	}
	if cfg.Notify.LossProb != 0.5 || cfg.Notify.Delay != 300*time.Millisecond {
		t.Errorf("notify = %+v", cfg.Notify)
	}
	if len(cfg.Packets) != 1 || cfg.Packets[0].ReorderDelay != 50*time.Millisecond {
		t.Errorf("packets = %+v", cfg.Packets)
	}
	if got, want := cfg.Horizon(), 22*time.Second; got != want {
		t.Errorf("Horizon() = %v, want %v (crash at 20s + 2s downtime)", got, want)
	}
}

func TestParseRejections(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string // substring expected in the error
	}{
		{"bad json", `{`, "parse config"},
		{"unknown field", `{"bogus": 1}`, "unknown field"},
		{"blackout missing at", `{"blackouts":[{"link":"wired-fwd","length":"1s"}]}`, "at is required"},
		{"blackout bad duration", `{"blackouts":[{"link":"wired-fwd","at":"never","length":"1s"}]}`, "at"},
		{"blackout unknown link", `{"blackouts":[{"link":"tunnel","at":"1s","length":"1s"}]}`, "unknown link"},
		{"blackout negative length", `{"blackouts":[{"link":"wired-fwd","at":"1s","length":"-1s"}]}`, "positive length"},
		{"blackouts overlap", `{"blackouts":[
			{"link":"wired-fwd","at":"1s","length":"5s"},
			{"link":"wired-fwd","at":"3s","length":"1s"}]}`, "overlap"},
		{"storm loss prob range", `{"storms":[{"link":"wired-fwd","at":"1s","length":"1s","loss_prob":1.5}]}`, "outside [0, 1]"},
		{"crash negative downtime", `{"crashes":[{"at":"1s","downtime":"-2s"}]}`, "positive downtime"},
		{"crash while down", `{"crashes":[{"at":"1s","downtime":"5s"},{"at":"2s","downtime":"1s"}]}`, "already down"},
		{"notify prob range", `{"notify":{"loss_prob":-0.1}}`, "outside [0, 1]"},
		{"notify delay prob without delay", `{"notify":{"delay_prob":0.5}}`, "delay is zero"},
		{"packet faults unknown link", `{"packets":[{"link":"tunnel","corrupt_prob":0.1}]}`, "unknown link"},
		{"packet faults duplicate link", `{"packets":[
			{"link":"wired-fwd","corrupt_prob":0.1},
			{"link":"wired-fwd","dup_prob":0.1}]}`, "duplicate packet-fault entry"},
		{"reorder prob without delay", `{"packets":[{"link":"wired-fwd","reorder_prob":0.5}]}`, "reorder delay is zero"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse([]byte(tt.body))
			if err == nil {
				t.Fatalf("invalid plan accepted: %s", tt.body)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	if (&Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	// A packet-fault entry with all-zero probabilities injects nothing.
	if (&Config{Packets: []PacketFaults{{Link: WiredFwd}}}).Enabled() {
		t.Error("no-op packet faults report enabled")
	}
	if !(&Config{Crashes: []Crash{{At: time.Second, Downtime: time.Second}}}).Enabled() {
		t.Error("crash plan reports disabled")
	}
	if !(&Config{Notify: NotifyFaults{LossProb: 0.5}}).Enabled() {
		t.Error("notify plan reports disabled")
	}
}

func TestHorizonNilAndProbabilisticOnly(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Horizon() != 0 {
		t.Error("nil config has nonzero horizon")
	}
	probOnly := &Config{Notify: NotifyFaults{LossProb: 0.5}}
	if probOnly.Horizon() != 0 {
		t.Error("probabilistic-only plan has nonzero horizon")
	}
}

func TestOverlayChannelPassThrough(t *testing.T) {
	cfg := &Config{Blackouts: []Blackout{{Link: WirelessDown, At: time.Second, Length: time.Second}}}
	if ch, err := cfg.OverlayChannel(WiredFwd, nil); err != nil || ch != nil {
		t.Errorf("hop without windows: ch=%v err=%v, want nil/nil pass-through", ch, err)
	}
	ch, err := cfg.OverlayChannel(WirelessDown, nil)
	if err != nil || ch == nil {
		t.Fatalf("hop with windows: ch=%v err=%v", ch, err)
	}
	if !cfg.NeedsChannel(WirelessDown) || cfg.NeedsChannel(WirelessUp) {
		t.Error("NeedsChannel does not match the blackout windows")
	}
}

// testLink builds a fast error-free link delivering into got.
func testLink(t *testing.T, s *sim.Simulator, name string, got *[]*packet.Packet) *link.Link {
	t.Helper()
	l, err := link.New(s, link.Config{Name: name, Rate: 10 * units.Mbps}, nil,
		func(p *packet.Packet) { *got = append(*got, p) })
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestInjectorStormDropsInsideWindowOnly(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l := testLink(t, s, WiredFwd, &got)
	cfg := &Config{Storms: []Storm{{Link: WiredFwd, At: 0, Length: time.Hour, LossProb: 1}}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(l)

	l.Send(&packet.Packet{ID: 1, Kind: packet.Data, Payload: 100})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("packet delivered through a loss_prob=1 storm: %v", got)
	}
	if inj.Stats().StormDrops != 1 {
		t.Errorf("StormDrops = %d, want 1", inj.Stats().StormDrops)
	}

	// After the window, deliveries pass untouched.
	s.ScheduleAt(2*time.Hour, func() {
		l.Send(&packet.Packet{ID: 2, Kind: packet.Data, Payload: 100})
	})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("post-storm delivery missing: %v", got)
	}
}

func TestInjectorPacketCorruptionAndDuplication(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l := testLink(t, s, WirelessUp, &got)
	cfg := &Config{Packets: []PacketFaults{{Link: WirelessUp, CorruptProb: 1}}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(l)
	l.Send(&packet.Packet{ID: 1, Kind: packet.Data, Payload: 100})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || inj.Stats().CorruptDrops != 1 {
		t.Errorf("corrupt_prob=1: delivered=%d drops=%d", len(got), inj.Stats().CorruptDrops)
	}

	// Duplication: every delivery arrives twice, and the copy is counted
	// as Injected, preserving Delivered+Corrupted <= Sent on the link.
	s2 := sim.New()
	var got2 []*packet.Packet
	l2 := testLink(t, s2, WirelessUp, &got2)
	cfg2 := &Config{Packets: []PacketFaults{{Link: WirelessUp, DupProb: 1}}}
	inj2, err := New(s2, cfg2, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj2.Attach(l2)
	l2.Send(&packet.Packet{ID: 7, Kind: packet.Data, Payload: 100})
	if err := s2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 || inj2.Stats().Duplicates != 1 {
		t.Errorf("dup_prob=1: delivered=%d dups=%d", len(got2), inj2.Stats().Duplicates)
	}
	st := l2.Stats()
	if st.Injected != 1 || st.Delivered+st.Corrupted > st.Sent {
		t.Errorf("link counters break conservation: %+v", st)
	}
}

func TestInjectorReorderReleasesLater(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l := testLink(t, s, WiredFwd, &got)
	cfg := &Config{Packets: []PacketFaults{{Link: WiredFwd, ReorderProb: 1, ReorderDelay: time.Second}}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(l)
	l.Send(&packet.Packet{ID: 1, Kind: packet.Data, Payload: 100})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("held packet never released: %v", got)
	}
	if s.Now() < time.Second {
		t.Errorf("release fired at %v, before the 1s reorder delay", s.Now())
	}
	if inj.Stats().Reorders != 1 {
		t.Errorf("Reorders = %d, want 1", inj.Stats().Reorders)
	}
}

func TestInjectorNotifyFaults(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l := testLink(t, s, WiredRev, &got)
	cfg := &Config{Notify: NotifyFaults{LossProb: 1}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(l)

	// Notifications are dropped; ordinary acks on the same hop pass.
	l.Send(&packet.Packet{ID: 1, Kind: packet.EBSN})
	l.Send(&packet.Packet{ID: 2, Kind: packet.SourceQuench})
	l.Send(&packet.Packet{ID: 3, Kind: packet.Ack, AckNo: 100})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != packet.Ack {
		t.Errorf("deliveries = %v, want only the ACK", got)
	}
	if inj.Stats().NotifyDropped != 2 {
		t.Errorf("NotifyDropped = %d, want 2", inj.Stats().NotifyDropped)
	}
}

func TestInjectorNotifyDelay(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l := testLink(t, s, WiredRev, &got)
	cfg := &Config{Notify: NotifyFaults{DelayProb: 1, Delay: 2 * time.Second}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(l)
	l.Send(&packet.Packet{ID: 1, Kind: packet.EBSN})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delayed notification never released: %v", got)
	}
	if s.Now() < 2*time.Second {
		t.Errorf("release fired at %v, before the 2s delay", s.Now())
	}
	if inj.Stats().NotifyDelayed != 1 {
		t.Errorf("NotifyDelayed = %d, want 1", inj.Stats().NotifyDelayed)
	}
}

// fakeStation records crash/restart calls.
type fakeStation struct {
	crashes  int
	restarts int
}

func (f *fakeStation) Crash() int { f.crashes++; return 3 }
func (f *fakeStation) Restart()   { f.restarts++ }

func TestScheduleCrashes(t *testing.T) {
	s := sim.New()
	cfg := &Config{Crashes: []Crash{
		{At: time.Second, Downtime: time.Second},
		{At: 10 * time.Second, Downtime: 2 * time.Second},
	}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeStation{}
	inj.ScheduleCrashes(fs)
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fs.crashes != 2 || fs.restarts != 2 {
		t.Errorf("crashes/restarts = %d/%d, want 2/2", fs.crashes, fs.restarts)
	}
	st := inj.Stats()
	if st.Crashes != 2 || st.CrashLostPackets != 6 {
		t.Errorf("stats = %+v, want 2 crashes, 6 lost packets", st)
	}
}

func TestNewRejects(t *testing.T) {
	if _, err := New(nil, &Config{}, nil); err == nil {
		t.Error("nil simulator accepted")
	}
	enabled := &Config{Notify: NotifyFaults{LossProb: 1}}
	if _, err := New(sim.New(), enabled, nil); err == nil {
		t.Error("enabled plan with nil RNG accepted")
	}
	invalid := &Config{Blackouts: []Blackout{{Link: "tunnel", At: 0, Length: time.Second}}}
	if _, err := New(sim.New(), invalid, sim.NewRNG(1)); err == nil {
		t.Error("invalid plan accepted")
	}
}

// FuzzChaosParse throws arbitrary bytes at the fault-plan parser: it must
// never panic, and any plan it accepts must pass Validate (Parse already
// validates, so acceptance of an invalid plan is a parser bug).
func FuzzChaosParse(f *testing.F) {
	seeds := []string{
		`{}`,
		fullPlanJSON,
		`{"blackouts":[{"link":"wired-rev","at":"0s","length":"1ms"}]}`,
		`{"crashes":[{"at":"1s","downtime":"500ms"},{"at":"5s","downtime":"1s"}]}`,
		`{"notify":{"loss_prob":1}}`,
		`{"packets":[{"link":"wireless-down","dup_prob":0.5}]}`,
		`{"event_storms":[{"at":"5s","count":100,"spacing":"1ms"}]}`,
		`{"event_storms":[{"at":"1s","count":-2}]}`,
		`{"blackouts":[{"link":"nope","at":"1s","length":"1s"}]}`,
		`{"storms":[{"link":"wired-fwd","at":"-1s","length":"1s","loss_prob":2}]}`,
		`{"bogus":true}`,
		`{`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Errorf("Parse accepted a plan that fails Validate: %v\ninput: %s", verr, data)
		}
	})
}

func TestParseEventStorms(t *testing.T) {
	cfg, err := Parse([]byte(`{"event_storms":[
		{"at": "5s", "count": 1000, "spacing": "1ms"},
		{"at": "2s"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Enabled() {
		t.Error("event-storm plan reports disabled")
	}
	if len(cfg.EventStorms) != 2 {
		t.Fatalf("event storms = %+v", cfg.EventStorms)
	}
	if es := cfg.EventStorms[0]; es.At != 5*time.Second || es.Count != 1000 || es.Spacing != time.Millisecond {
		t.Errorf("bounded storm = %+v", es)
	}
	if es := cfg.EventStorms[1]; es.At != 2*time.Second || es.Count != 0 || es.Spacing != 0 {
		t.Errorf("unbounded livelock storm = %+v", es)
	}
	// Horizon covers the bounded storm's last event; the unbounded one
	// contributes only its start.
	if got, want := cfg.Horizon(), 5*time.Second+999*time.Millisecond; got != want {
		t.Errorf("Horizon() = %v, want %v", got, want)
	}

	for _, bad := range []struct{ name, body, want string }{
		{"missing at", `{"event_storms":[{"count":5}]}`, "at is required"},
		{"negative count", `{"event_storms":[{"at":"1s","count":-1}]}`, "negative count"},
		{"negative spacing", `{"event_storms":[{"at":"1s","spacing":"-1ms"}]}`, "negative spacing"},
	} {
		if _, err := Parse([]byte(bad.body)); err == nil || !strings.Contains(err.Error(), bad.want) {
			t.Errorf("%s: err = %v, want mention of %q", bad.name, err, bad.want)
		}
	}
}

// TestEventStormLivelockCaughtByBudget: an unbounded zero-spacing storm
// is a same-instant livelock — the virtual clock freezes at the storm's
// start, so only the event budget can end the run.
func TestEventStormLivelockCaughtByBudget(t *testing.T) {
	s := sim.New()
	cfg := &Config{EventStorms: []EventStorm{{At: time.Second}}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj.ScheduleEventStorms()
	s.SetBudget(sim.Budget{MaxEvents: 10_000})

	err = s.RunAll()
	be, ok := err.(*sim.BudgetError)
	if !ok {
		t.Fatalf("RunAll returned %v, want *sim.BudgetError", err)
	}
	if be.Kind != sim.BudgetEvents {
		t.Fatalf("kind = %q, want events", be.Kind)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock at %v, want frozen at the storm start (1s)", s.Now())
	}
	if inj.Stats().EventStormEvents == 0 {
		t.Fatal("no storm events counted")
	}
}

// TestEventStormBoundedIsBenign: a bounded storm fires exactly Count
// events and the run drains normally — benign chaos must not need a
// budget to finish.
func TestEventStormBoundedIsBenign(t *testing.T) {
	s := sim.New()
	cfg := &Config{EventStorms: []EventStorm{{At: time.Second, Count: 500, Spacing: time.Millisecond}}}
	inj, err := New(s, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	inj.ScheduleEventStorms()
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got := inj.Stats().EventStormEvents; got != 500 {
		t.Fatalf("storm events = %d, want 500", got)
	}
	if want := time.Second + 499*time.Millisecond; s.Now() != want {
		t.Fatalf("clock at %v, want %v", s.Now(), want)
	}
}
