package oracle

// intervalSet is a small ordered set of half-open byte ranges [start, end),
// merged on insert. It tracks which bytes the source has retransmitted so
// Karn's backoff-reset rule can ask: does this ACK cover any fresh byte?
// The set stays tiny (ranges below snd_una are pruned on every new ACK),
// so linear operations are fine.
type intervalSet struct {
	spans []span
}

type span struct {
	start, end int64
}

// add inserts [start, end), merging overlapping or adjacent spans.
func (s *intervalSet) add(start, end int64) {
	if end <= start {
		return
	}
	out := make([]span, 0, len(s.spans)+1)
	inserted := false
	for _, sp := range s.spans {
		switch {
		case sp.end < start:
			out = append(out, sp)
		case end < sp.start:
			if !inserted {
				out = append(out, span{start, end})
				inserted = true
			}
			out = append(out, sp)
		default:
			// Overlapping or touching: absorb into the pending span.
			if sp.start < start {
				start = sp.start
			}
			if sp.end > end {
				end = sp.end
			}
		}
	}
	if !inserted {
		out = append(out, span{start, end})
	}
	s.spans = out
}

// covers reports whether every byte of [start, end) is in the set. An
// empty range is trivially covered.
func (s *intervalSet) covers(start, end int64) bool {
	for _, sp := range s.spans {
		if start >= end {
			return true
		}
		if sp.start > start {
			return false
		}
		if sp.end > start {
			start = sp.end
		}
	}
	return start >= end
}

// prune drops all bytes below the given offset (they were acknowledged).
func (s *intervalSet) prune(below int64) {
	out := s.spans[:0]
	for _, sp := range s.spans {
		if sp.end <= below {
			continue
		}
		if sp.start < below {
			sp.start = below
		}
		out = append(out, sp)
	}
	s.spans = out
}
