// Package multiconn reproduces the Channel State Dependent Packet (CSDP)
// scheduling study the paper summarizes in §2 [Bhagwat et al., INFOCOM
// 95]: several TCP connections share one wireless LAN radio at the base
// station, each mobile host fading independently. Under plain FIFO
// service, a head-of-line packet whose receiver is in a fade blocks
// everyone; round-robin service isolates the blocked connection, and a
// channel-state-dependent scheduler (round-robin that skips
// predicted-bad receivers) does better still — bounded by the accuracy of
// the channel predictor, which the paper calls the approach's main
// limitation.
//
// The subsystem reuses the repository's TCP endpoints and error model and
// adds a shared-radio scheduler with per-connection queues and a
// stop-and-wait link ARQ (retransmission with packet discards, as in the
// original study).
package multiconn

import (
	"errors"
	"fmt"
	"time"

	"wtcp/internal/cell"
	"wtcp/internal/errmodel"
	"wtcp/internal/packet"
	"wtcp/internal/units"
)

// Policy selects the base station's radio scheduling discipline.
type Policy int

// Policies.
const (
	// FIFO serves packets in arrival order; a fading head blocks all.
	FIFO Policy = iota + 1
	// RoundRobin cycles across connections' queues; a failed head only
	// costs its own connection's turn.
	RoundRobin
	// CSDP is round-robin that skips connections whose channel the
	// predictor marks bad.
	CSDP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case RoundRobin:
		return "roundrobin"
	case CSDP:
		return "csdp"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a multi-connection run.
type Config struct {
	// Connections is the number of simultaneous TCP transfers.
	Connections int
	// Policy is the radio scheduling discipline.
	Policy Policy
	// TransferSize is moved per connection.
	TransferSize units.ByteSize
	// PacketSize is the segment size (header included); no fragmentation
	// (wireless LAN).
	PacketSize units.ByteSize
	// Window is each connection's advertised window.
	Window units.ByteSize
	// WiredRate/WiredDelay parameterize each connection's wired hop.
	WiredRate  units.BitRate
	WiredDelay time.Duration
	// WirelessRate/WirelessDelay parameterize the shared radio.
	WirelessRate  units.BitRate
	WirelessDelay time.Duration
	// Channel is the per-connection fading model; every connection gets
	// an independent instance (independent user fading is what makes the
	// scheduling policies differ).
	Channel errmodel.Config
	// PredictorAccuracy is the probability the CSDP predictor reports
	// the true channel state (1.0 = oracle). Ignored by other policies.
	PredictorAccuracy float64
	// EBSN composes the paper's contribution with the scheduler: after
	// every unsuccessful link attempt the base station notifies every
	// source whose data it is holding up (the failing connection and any
	// queued behind it), each of which re-arms its retransmission timer.
	// An extension beyond both original studies.
	EBSN bool
	// RTmax bounds link-level retransmissions per packet before discard.
	RTmax int
	// PerConnQueue bounds each connection's queue at the base station,
	// in packets.
	PerConnQueue int
	// Seed drives all randomness; Horizon caps the run.
	Seed    int64
	Horizon time.Duration
}

// LANDefaults returns a configuration mirroring the paper's LAN
// environment with n connections under the given policy.
func LANDefaults(n int, policy Policy, meanBad time.Duration) Config {
	return Config{
		Connections:       n,
		Policy:            policy,
		TransferSize:      512 * units.KB,
		PacketSize:        1536,
		Window:            16 * units.KB,
		WiredRate:         10 * units.Mbps,
		WiredDelay:        time.Millisecond,
		WirelessRate:      2 * units.Mbps,
		WirelessDelay:     time.Millisecond,
		Channel:           errmodel.PaperLAN(meanBad),
		PredictorAccuracy: 1.0,
		RTmax:             64,
		PerConnQueue:      20,
		Seed:              1,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Connections <= 0:
		return errors.New("multiconn: need at least one connection")
	case c.Policy < FIFO || c.Policy > CSDP:
		return errors.New("multiconn: unknown policy")
	case c.PacketSize <= packet.HeaderSize:
		return errors.New("multiconn: packet size below header")
	case c.TransferSize <= 0:
		return errors.New("multiconn: nothing to transfer")
	case c.Window < c.PacketSize-packet.HeaderSize:
		return errors.New("multiconn: window below one segment")
	case c.WiredRate <= 0 || c.WirelessRate <= 0:
		return errors.New("multiconn: rates must be positive")
	case c.PredictorAccuracy < 0 || c.PredictorAccuracy > 1:
		return errors.New("multiconn: predictor accuracy outside [0,1]")
	default:
		return c.Channel.Validate()
	}
}

// ConnResult is one connection's outcome.
type ConnResult struct {
	Completed      bool
	Elapsed        time.Duration
	ThroughputKbps float64
	Timeouts       uint64
	RetransKB      float64
}

// Result is a whole run's outcome.
type Result struct {
	Config        Config
	Completed     bool // all connections finished
	PerConn       []ConnResult
	AggregateKbps float64
	// Fairness is Jain's index over per-connection throughputs: 1.0 is
	// perfectly fair, 1/n is maximally unfair.
	Fairness float64
	// Radio counters.
	RadioAttempts uint64
	RadioDiscards uint64
	SkippedBad    uint64 // CSDP: scheduling decisions that skipped a bad channel
	// EBSNsSent counts per-connection bad-state notifications.
	EBSNsSent uint64
	// TotalTimeouts aggregates source timeouts across connections.
	TotalTimeouts uint64
}

// Run executes one multi-connection simulation. Since the cell engine
// landed, Run is a thin adapter over internal/cell: the flat engine is a
// bit-identical port of the object-per-flow implementation this package
// used to carry (preserved in reference_test.go, where a differential
// test pins the equivalence), so Results are unchanged while large runs
// stop paying the object-graph overhead.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 4 * time.Hour
	}
	if cfg.RTmax <= 0 {
		cfg.RTmax = 64
	}
	if cfg.PerConnQueue <= 0 {
		cfg.PerConnQueue = 20
	}

	cr, err := cell.Run(cell.Config{
		Flows:             cfg.Connections,
		BaseStations:      1,
		Policy:            cell.Policy(cfg.Policy),
		TransferSize:      cfg.TransferSize,
		PacketSize:        cfg.PacketSize,
		Window:            cfg.Window,
		WiredRate:         cfg.WiredRate,
		WiredDelay:        cfg.WiredDelay,
		WirelessRate:      cfg.WirelessRate,
		WirelessDelay:     cfg.WirelessDelay,
		Channel:           cfg.Channel,
		SharedChannel:     false, // every mobile fades independently
		PredictorAccuracy: cfg.PredictorAccuracy,
		EBSN:              cfg.EBSN,
		EBSNBroadcast:     true, // notify queued bystanders too
		RTmax:             cfg.RTmax,
		PerFlowQueue:      cfg.PerConnQueue,
		Seed:              cfg.Seed,
		Horizon:           cfg.Horizon,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Config:        cfg,
		Completed:     cr.Completed,
		RadioAttempts: cr.RadioAttempts,
		RadioDiscards: cr.RadioDiscards,
		SkippedBad:    cr.SkippedBad,
		EBSNsSent:     cr.EBSNsSent,
		TotalTimeouts: cr.TotalTimeouts,
		AggregateKbps: cr.AggregateKbps,
		Fairness:      cr.Fairness,
	}
	for _, fr := range cr.Flows {
		res.PerConn = append(res.PerConn, ConnResult{
			Completed:      fr.Completed,
			Elapsed:        fr.Elapsed,
			ThroughputKbps: units.ThroughputKbps(cfg.TransferSize, fr.Elapsed),
			Timeouts:       fr.Timeouts,
			RetransKB:      float64(fr.RetransBytes) / float64(units.KB),
		})
	}
	return res, nil
}
