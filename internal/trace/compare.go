package trace

import (
	"fmt"
	"strings"
	"time"
)

// RenderComparison draws two traces side by side on a shared time axis —
// the visual argument of Figures 3 vs 5: the left panel's stalls and
// retransmission marks against the right panel's uninterrupted staircase.
func RenderComparison(leftTitle string, left *Trace, rightTitle string, right *Trace,
	panelWidth, height int, horizon time.Duration) string {
	if panelWidth < 20 {
		panelWidth = 20
	}
	if height < 10 {
		height = 10
	}
	lp := panelLines(left, panelWidth, height, horizon)
	rp := panelLines(right, panelWidth, height, horizon)

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s   %s\n", panelWidth+1, clip(leftTitle, panelWidth), clip(rightTitle, panelWidth))
	for i := range lp {
		fmt.Fprintf(&b, "%s   %s\n", lp[i], rp[i])
	}
	axis := "+" + strings.Repeat("-", panelWidth)
	fmt.Fprintf(&b, "%s   %s\n", axis, axis)
	label := fmt.Sprintf(" 0%*s", panelWidth-1, fmt.Sprintf("%.0fs", horizon.Seconds()))
	fmt.Fprintf(&b, "%s   %s\n", label, label)
	b.WriteString("'.' send   'o' source retransmission   (packet number mod 90, bottom-up)\n")
	return b.String()
}

// panelLines renders one trace's scatter rows (no axes).
func panelLines(tr *Trace, width, height int, horizon time.Duration) []string {
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	if tr != nil {
		for _, e := range tr.Events() {
			if e.Kind != Send && e.Kind != Retransmit {
				continue
			}
			if horizon > 0 && e.At > horizon {
				continue
			}
			x := int(float64(width-1) * float64(e.At) / float64(horizon))
			y := int(float64(height-1) * float64(e.PacketNo%PacketModulo) / float64(PacketModulo-1))
			row := height - 1 - y
			mark := byte('.')
			if e.Kind == Retransmit {
				mark = 'o'
			}
			if grid[row][x] == ' ' || mark == 'o' {
				grid[row][x] = mark
			}
		}
	}
	out := make([]string, height)
	for i, row := range grid {
		out[i] = "|" + string(row)
	}
	return out
}

// clip truncates a title to the panel width.
func clip(s string, w int) string {
	if len(s) <= w {
		return s
	}
	return s[:w]
}

// Divergence pinpoints the first difference between two event sequences:
// the event index, the field that differs, and both rendered values.
type Divergence struct {
	Index int
	Field string
	A, B  string
}

// String renders the divergence for drift reports.
func (d *Divergence) String() string {
	return fmt.Sprintf("event %d: %s differs: %s != %s", d.Index, d.Field, d.A, d.B)
}

// DiffEvents returns the first divergence between two event sequences, or
// nil when they match. Durations compare within tol (so decoded goldens,
// normalized to microseconds, match fresh nanosecond-precision runs), with
// one exception: an idle timer (negative deadline) never matches an armed
// one, regardless of tolerance. A length mismatch diverges at the first
// index present in only one sequence, with field "missing".
func DiffEvents(a, b []Event, tol time.Duration) *Divergence {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if d := diffEvent(a[i], b[i], tol); d != nil {
			d.Index = i
			return d
		}
	}
	if len(a) != len(b) {
		d := &Divergence{Index: n, Field: "missing", A: "-", B: "-"}
		if len(a) > n {
			d.A = fmt.Sprintf("%s %s seq=%d", encodeDuration(a[n].At), a[n].Kind, a[n].Seq)
		} else {
			d.B = fmt.Sprintf("%s %s seq=%d", encodeDuration(b[n].At), b[n].Kind, b[n].Seq)
		}
		return d
	}
	return nil
}

// diffEvent compares one event pair; Index is filled by the caller.
func diffEvent(a, b Event, tol time.Duration) *Divergence {
	if a.Kind != b.Kind {
		return &Divergence{Field: "kind", A: a.Kind.String(), B: b.Kind.String()}
	}
	durs := []struct {
		name string
		a, b time.Duration
	}{
		{"at", a.At, b.At},
		{"rto", a.RTO, b.RTO},
		{"deadline", a.Deadline, b.Deadline},
	}
	for _, f := range durs {
		if !durationsMatch(f.a, f.b, tol) {
			return &Divergence{Field: f.name, A: encodeDuration(f.a), B: encodeDuration(f.b)}
		}
	}
	ints := []struct {
		name string
		a, b int64
	}{
		{"seq", a.Seq, b.Seq},
		{"payload", a.Payload, b.Payload},
		{"ack", a.Ack, b.Ack},
		{"ackclass", int64(a.AckClass), int64(b.AckClass)},
		{"cwnd", a.Cwnd, b.Cwnd},
		{"ssthresh", a.Ssthresh, b.Ssthresh},
		{"snduna", a.SndUna, b.SndUna},
		{"sndnxt", a.SndNxt, b.SndNxt},
		{"sndmax", a.SndMax, b.SndMax},
		{"shift", int64(a.Shift), int64(b.Shift)},
		{"dupacks", int64(a.DupAcks), int64(b.DupAcks)},
		{"attempt", int64(a.Attempt), int64(b.Attempt)},
		{"unit", int64(a.Unit), int64(b.Unit)},
		{"pkt", int64(a.Pkt), int64(b.Pkt)},
	}
	for _, f := range ints {
		if f.a != f.b {
			return &Divergence{Field: f.name, A: fmt.Sprint(f.a), B: fmt.Sprint(f.b)}
		}
	}
	return nil
}

// durationsMatch compares within tol, treating any negative value as the
// idle-timer sentinel: idle matches only idle.
func durationsMatch(a, b, tol time.Duration) bool {
	if a < 0 || b < 0 {
		return a < 0 && b < 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
