package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wtcp/internal/chaos"
	"wtcp/internal/core"
	"wtcp/internal/repro"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// stormRunSim wraps the real runner so that configs matching
// (badPeriod, size) livelock: an unbounded zero-spacing event storm is
// injected at time zero, freezing the virtual clock while the kernel
// burns events — exactly the shape the event budget exists to catch.
// It returns a counter of pathological configs actually run.
func stormRunSim(t *testing.T, bad time.Duration, size units.ByteSize) *atomic.Int64 {
	t.Helper()
	var pathological atomic.Int64
	stubRunSim(t, func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		if cfg.Channel.MeanBad == bad && cfg.PacketSize == size {
			pathological.Add(1)
			cfg.Chaos = &chaos.Config{EventStorms: []chaos.EventStorm{{At: 0}}}
		}
		return core.RunContext(ctx, cfg)
	})
	return &pathological
}

// governedOpts is ckOpts plus supervision: breaker armed and an
// aggressive event budget so the injected livelock trips in
// milliseconds instead of at the 2^31-event default.
func governedOpts(sup *Supervisor) Options {
	opt := ckOpts()
	opt.Supervise = sup
	opt.RunBudget = sim.Budget{MaxEvents: 200_000}
	return opt
}

// withoutPoint filters a throughput sweep down to the points that are
// not (bad, size).
func withoutPoint(points []ThroughputPoint, bad time.Duration, size units.ByteSize) []ThroughputPoint {
	var out []ThroughputPoint
	for _, p := range points {
		if p.BadPeriod == bad && p.PacketSize == size {
			continue
		}
		out = append(out, p)
	}
	return out
}

// TestGovernedSweepQuarantinesPathologicalPoint is the acceptance
// scenario: a sweep with one pathological point (event-storm livelock)
// completes under supervision with that point quarantined and listed,
// every other point bit-identical to an ungoverned run, and a repro
// bundle emitted for the budget abort.
func TestGovernedSweepQuarantinesPathologicalPoint(t *testing.T) {
	const badPeriod = time.Second
	const size = units.ByteSize(512)

	baseline, err := Fig7(context.Background(), ckOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := ThroughputCSV(withoutPoint(baseline, badPeriod, size))

	stormRunSim(t, badPeriod, size)
	sup := NewSupervisor()
	dir := t.TempDir()
	opt := governedOpts(sup)
	opt.ReproDir = dir
	got, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatalf("governed sweep failed instead of quarantining: %v", err)
	}

	qs := sup.Quarantined()
	if len(qs) != 1 {
		t.Fatalf("quarantined %d points, want 1: %+v", len(qs), qs)
	}
	q := qs[0]
	if q.Key != "wan/basic/bad=1s/size=512" {
		t.Errorf("quarantined key = %q", q.Key)
	}
	if q.Class != string(core.ClassResourceExhausted) {
		t.Errorf("quarantine class = %s, want %s", q.Class, core.ClassResourceExhausted)
	}
	if q.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (initial + one perturbed retry)", q.Attempts)
	}
	if !strings.Contains(q.Reason, "events budget") {
		t.Errorf("reason %q does not name the exhausted budget", q.Reason)
	}

	if len(got) != len(baseline)-1 {
		t.Fatalf("governed sweep kept %d points, want %d", len(got), len(baseline)-1)
	}
	if csv := ThroughputCSV(got); csv != want {
		t.Errorf("surviving points differ from ungoverned run:\n--- want ---\n%s--- got ---\n%s", want, csv)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no repro bundle emitted for the quarantined point")
	}
	b, err := repro.Load(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != repro.KindBudget || b.BudgetKind != sim.BudgetEvents {
		t.Errorf("bundle kind = %s/%s, want %s/%s", b.Kind, b.BudgetKind, repro.KindBudget, sim.BudgetEvents)
	}
}

// TestUnsupervisedSweepFailsInsteadOfHanging is the regression for the
// engine's livelock gap: before run budgets, a same-instant event storm
// hung a worker forever (the virtual-time watchdog never fires when the
// clock is frozen). Without a Supervisor the sweep must now fail with a
// typed, classified budget error — promptly, not after 2^31 events.
func TestUnsupervisedSweepFailsInsteadOfHanging(t *testing.T) {
	stormRunSim(t, time.Second, 512)
	opt := ckOpts()
	opt.PacketSizes = []units.ByteSize{512}
	opt.BadPeriods = []time.Duration{time.Second}
	opt.RunBudget = sim.Budget{MaxEvents: 200_000}
	_, err := Fig7(context.Background(), opt)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("unsupervised livelock sweep returned %v, want *sim.BudgetError", err)
	}
	if be.Kind != sim.BudgetEvents {
		t.Errorf("budget kind = %s, want %s", be.Kind, sim.BudgetEvents)
	}
	if core.Classify(err) != core.ClassResourceExhausted {
		t.Errorf("sweep error classifies as %s, want %s", core.Classify(err), core.ClassResourceExhausted)
	}
}

// TestDefaultRunBudgetApplied: every engine run must carry the default
// livelock guard (event ceiling + wall-clock deadline) unless the
// caller explicitly opts out or overrides a field.
func TestDefaultRunBudgetApplied(t *testing.T) {
	var got sim.Budget
	stubRunSim(t, func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		got = cfg.Budget
		r := &core.Result{Completed: true}
		r.Summary.Goodput = 1
		return r, nil
	})
	opt := Options{Replications: 1, PacketSizes: []units.ByteSize{512}, BadPeriods: []time.Duration{time.Second}}
	if _, err := Fig7(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	want := sim.Budget{MaxEvents: DefaultRunMaxEvents, WallClock: DefaultRunWall}
	if got != want {
		t.Errorf("default run budget = %+v, want %+v", got, want)
	}

	opt.RunBudget = sim.Budget{MaxEvents: 5000, WallClock: -1}
	if _, err := Fig7(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if got.MaxEvents != 5000 || got.WallClock != -1 {
		t.Errorf("RunBudget override not honoured: %+v", got)
	}

	opt.RunBudget = sim.Budget{}
	opt.NoRunBudget = true
	if _, err := Fig7(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if got != (sim.Budget{}) {
		t.Errorf("NoRunBudget still imposed %+v", got)
	}
}

// TestAllTransientFailuresQuarantineUnderSupervision: when every
// replication of a point fails with a retryable class and a Supervisor
// is armed, the point is quarantined (class recorded) instead of
// failing the sweep.
func TestAllTransientFailuresQuarantineUnderSupervision(t *testing.T) {
	stubRunSim(t, func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		return nil, errors.New("synthetic permanent failure")
	})
	sup := NewSupervisor()
	opt := Options{
		Replications: 2,
		Retries:      -1,
		Supervise:    sup,
		PacketSizes:  []units.ByteSize{512},
		BadPeriods:   []time.Duration{time.Second},
	}
	points, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatalf("supervised all-failing sweep errored: %v", err)
	}
	if len(points) != 0 {
		t.Errorf("all-failing sweep produced %d points", len(points))
	}
	qs := sup.Quarantined()
	if len(qs) != 1 || qs[0].Class != string(core.ClassTransient) {
		t.Fatalf("quarantine records = %+v, want one transient record", qs)
	}
}

// TestProtocolBugFailsFastUnderSupervision: a protocol bug (invariant
// violation) must fail the sweep even with the breaker armed — a wrong
// implementation must never be "quarantined" into a passing run — and
// must not be retried.
func TestProtocolBugFailsFastUnderSupervision(t *testing.T) {
	var runs atomic.Int64
	stubRunSim(t, func(ctx context.Context, cfg core.Config) (*core.Result, error) {
		runs.Add(1)
		return nil, &sim.CheckError{Name: "conservation", Err: errors.New("synthetic violation")}
	})
	sup := NewSupervisor()
	opt := Options{
		Replications: 1,
		Retries:      3,
		Supervise:    sup,
		PacketSizes:  []units.ByteSize{512},
		BadPeriods:   []time.Duration{time.Second},
	}
	_, err := Fig7(context.Background(), opt)
	var ce *sim.CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("protocol bug surfaced as %v, want *sim.CheckError", err)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("protocol bug was retried (%d runs), fail-fast means exactly 1", n)
	}
	if len(sup.Quarantined()) != 0 {
		t.Errorf("protocol bug was quarantined: %+v", sup.Quarantined())
	}
}

// resumeGoverned runs the governed sweep with a checkpoint, cancelling
// after cancelAfter fresh points, then resumes it to completion with a
// fresh supervisor. It returns the final points, the resumed run's
// quarantine records, and how many pathological configs the resume
// executed.
func resumeGoverned(t *testing.T, path string, cancelAfter int,
	bad time.Duration, size units.ByteSize) ([]ThroughputPoint, []Quarantine, int64) {
	t.Helper()
	patho := stormRunSim(t, bad, size)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := governedOpts(NewSupervisor())
	opt.Checkpoint = path
	finished := 0
	opt.OnPoint = func(string) {
		if finished++; finished == cancelAfter {
			cancel()
		}
	}
	if _, err := Fig7(ctx, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}

	patho.Store(0)
	sup := NewSupervisor()
	opt = governedOpts(sup)
	opt.Checkpoint = path
	points, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return points, sup.Quarantined(), patho.Load()
}

// TestResumeAcrossQuarantineByteIdentical: the sweep result — surviving
// points AND the quarantine list — must be byte-identical whether the
// quarantine happened before or after the checkpoint/resume boundary,
// and a resumed sweep must not re-run a quarantined point.
func TestResumeAcrossQuarantineByteIdentical(t *testing.T) {
	// Pathological point is the SECOND of four (bad=1s, size=1536), so a
	// cancel after 1 fresh point lands before it and a cancel after 2
	// fresh points lands after it (quarantine emits no OnPoint).
	const bad = time.Second
	const size = units.ByteSize(1536)

	stormRunSim(t, bad, size)
	sup := NewSupervisor()
	uninterrupted, err := Fig7(context.Background(), governedOpts(sup))
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := ThroughputCSV(uninterrupted)
	wantQuar := fmt.Sprintf("%+v", sup.Quarantined())

	for name, cancelAfter := range map[string]int{
		"quarantine-after-boundary":  1, // interrupted before the pathological point
		"quarantine-before-boundary": 2, // pathological point quarantined pre-interrupt
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.json")
			points, quars, pathoRuns := resumeGoverned(t, path, cancelAfter, bad, size)
			if got := ThroughputCSV(points); got != wantCSV {
				t.Errorf("resumed output differs from uninterrupted governed run:\n--- want ---\n%s--- got ---\n%s", wantCSV, got)
			}
			if got := fmt.Sprintf("%+v", quars); got != wantQuar {
				t.Errorf("quarantine records differ:\nwant %s\ngot  %s", wantQuar, got)
			}
			if cancelAfter == 2 && pathoRuns != 0 {
				t.Errorf("resume re-ran the quarantined point %d times; the checkpoint record must be honoured", pathoRuns)
			}
		})
	}
}

// TestBudgetSmoke is the `make budget-smoke` gate: a tiny governed sweep
// with aggressive budgets and one pathological point must finish clean
// — quarantine recorded everywhere it should be (supervisor, health,
// checkpoint, stderr-free), partial results present, bundle emitted.
// Run it with -race; the worker pool and health heartbeat are shared
// state.
func TestBudgetSmoke(t *testing.T) {
	stormRunSim(t, time.Second, 1536)
	sup := NewSupervisor()
	health := NewHealth()
	health.SetStragglerLog(nil)
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "smoke.json")
	statusPath := filepath.Join(dir, "status.json")
	health.SetStatusPath(statusPath)

	opt := Options{
		Replications: 2,
		Transfer:     20 * units.KB,
		PacketSizes:  []units.ByteSize{512, 1536},
		BadPeriods:   []time.Duration{time.Second},
		Workers:      2,
		Supervise:    sup,
		RunBudget:    sim.Budget{MaxEvents: 200_000},
		Checkpoint:   ckPath,
		ReproDir:     filepath.Join(dir, "repro"),
		Health:       health,
	}
	points, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatalf("budget smoke sweep failed: %v", err)
	}
	if len(points) != 1 {
		t.Fatalf("partial results: got %d points, want 1 surviving", len(points))
	}
	qs := sup.Quarantined()
	if len(qs) != 1 || qs[0].Class != string(core.ClassResourceExhausted) {
		t.Fatalf("quarantine records = %+v, want one resource-exhausted record", qs)
	}

	// The checkpoint carries the quarantine.
	data, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"quarantined"`) {
		t.Error("checkpoint file has no quarantined section")
	}

	// The heartbeat saw both the completions and the quarantine, and the
	// status file is valid JSON with the documented schema.
	if err := health.WriteStatus(); err != nil {
		t.Fatal(err)
	}
	snap := health.Snapshot()
	if snap.Quarantined != 1 {
		t.Errorf("health quarantined = %d, want 1", snap.Quarantined)
	}
	if snap.Completed < 2 {
		t.Errorf("health completed = %d, want >= 2", snap.Completed)
	}
	if snap.EventsProcessed == 0 {
		t.Error("health counted no events")
	}
	raw, err := os.ReadFile(statusPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("status file is not JSON: %v", err)
	}
	for _, key := range []string{
		"timestamp", "uptime_sec", "completed", "failed", "retried",
		"quarantined", "events_processed", "events_per_sec",
		"median_run_sec", "heap_bytes",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("status JSON missing %q", key)
		}
	}

	// Bundle emitted for the budget abort.
	entries, err := os.ReadDir(opt.ReproDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no repro bundle in %s (err=%v)", opt.ReproDir, err)
	}
}

// TestHealthStatusJSONAndSignalDump exercises the heartbeat directly:
// active runs appear in the snapshot while in flight, the status file is
// written atomically and parses, and the human dump names the counters.
func TestHealthStatusJSONAndSignalDump(t *testing.T) {
	h := NewHealth()
	h.SetStragglerLog(nil)
	path := filepath.Join(t.TempDir(), "status.json")
	h.SetStatusPath(path)

	id := h.RunStarted("wan/basic/bad=1s/size=512", 101)
	snap := h.Snapshot()
	if len(snap.ActiveRuns) != 1 || snap.ActiveRuns[0].Key != "wan/basic/bad=1s/size=512" ||
		snap.ActiveRuns[0].Seed != 101 {
		t.Fatalf("active run not visible: %+v", snap.ActiveRuns)
	}
	h.RunFinished(id, 12345, true)
	h.noteRetry()
	h.noteQuarantine()

	snap = h.Snapshot()
	if snap.Completed != 1 || snap.Retried != 1 || snap.Quarantined != 1 ||
		snap.EventsProcessed != 12345 || len(snap.ActiveRuns) != 0 {
		t.Errorf("counters wrong: %+v", snap)
	}

	if err := h.WriteStatus(); err != nil {
		t.Fatal(err)
	}
	var onDisk HealthSnapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.Completed != 1 || onDisk.Quarantined != 1 || onDisk.EventsProcessed != 12345 {
		t.Errorf("status file counters wrong: %+v", onDisk)
	}

	dump := h.String()
	for _, want := range []string{"1 completed", "1 retried", "1 quarantined", "events: 12345"} {
		if !strings.Contains(dump, want) {
			t.Errorf("human dump missing %q:\n%s", want, dump)
		}
	}

	// Nil receiver: every hook must be a safe no-op.
	var nh *Health
	nh.RunFinished(nh.RunStarted("x", 1), 1, true)
	nh.noteRetry()
	nh.noteQuarantine()
	if err := nh.WriteStatus(); err != nil {
		t.Errorf("nil health WriteStatus: %v", err)
	}
	_ = nh.Snapshot()
}

// TestStragglerLogged: a run far beyond the completed-run median must be
// recorded in the snapshot and written to the straggler log.
func TestStragglerLogged(t *testing.T) {
	h := NewHealth()
	var buf bytes.Buffer
	h.SetStragglerLog(&buf)
	h.mu.Lock()
	h.durations = []float64{0.01, 0.01, 0.01} // median 10ms over 3 samples
	h.mu.Unlock()

	id := h.RunStarted("lan/ebsn/bad=400ms", 7)
	h.mu.Lock()
	ar := h.active[id]
	ar.started = ar.started.Add(-time.Second) // pretend it ran ~1s, 100x median
	h.active[id] = ar
	h.mu.Unlock()
	h.RunFinished(id, 10, true)

	snap := h.Snapshot()
	if len(snap.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want 1", snap.Stragglers)
	}
	s := snap.Stragglers[0]
	if s.Key != "lan/ebsn/bad=400ms" || s.Seed != 7 || s.Sec < stragglerFactor*s.MedianSec {
		t.Errorf("straggler record wrong: %+v", s)
	}
	if !strings.Contains(buf.String(), "straggler: lan/ebsn/bad=400ms seed 7") {
		t.Errorf("straggler log line missing: %q", buf.String())
	}

	// A run near the median must not be flagged.
	id = h.RunStarted("lan/ebsn/bad=400ms", 8)
	h.RunFinished(id, 10, true)
	if n := len(h.Snapshot().Stragglers); n != 1 {
		t.Errorf("normal run flagged as straggler (%d records)", n)
	}
}
