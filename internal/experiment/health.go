package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Health is the engine's real-time heartbeat: which replications are in
// flight right now, aggregate throughput (kernel events per second of
// wall clock), completed/retried/failed/quarantined counts, process
// memory, and a straggler log of runs that took far longer than the
// median of their peers. All methods are safe on a nil receiver (the
// engine calls them unconditionally) and safe for concurrent use by the
// worker pool.
type Health struct {
	mu           sync.Mutex
	start        time.Time
	statusPath   string
	stragglerOut io.Writer
	lastWrite    time.Time

	nextID      uint64
	active      map[uint64]activeRun
	completed   uint64
	failed      uint64
	retried     uint64
	quarantined uint64
	events      uint64
	durations   []float64 // seconds, successful runs only
	stragglers  []Straggler
}

// activeRun is one in-flight replication attempt.
type activeRun struct {
	key     string
	seed    int64
	started time.Time
}

// Straggler thresholds: a run is logged when it exceeds
// stragglerFactor times the median of at least stragglerMinSamples
// already-completed runs. The list is capped so a pathological sweep
// cannot grow the status file without bound.
const (
	stragglerFactor     = 4.0
	stragglerMinSamples = 3
	maxStragglers       = 32

	// statusWriteInterval throttles implicit status-file rewrites; an
	// explicit WriteStatus always writes.
	statusWriteInterval = time.Second
)

// HealthSnapshot is the status-JSON schema (written atomically to the
// configured status path, printed on SIGUSR1). Field names are part of
// the external interface; tests validate them.
type HealthSnapshot struct {
	Timestamp       time.Time   `json:"timestamp"`
	UptimeSec       float64     `json:"uptime_sec"`
	ActiveRuns      []ActiveRun `json:"active_runs"`
	Completed       uint64      `json:"completed"`
	Failed          uint64      `json:"failed"`
	Retried         uint64      `json:"retried"`
	Quarantined     uint64      `json:"quarantined"`
	EventsProcessed uint64      `json:"events_processed"`
	EventsPerSec    float64     `json:"events_per_sec"`
	MedianRunSec    float64     `json:"median_run_sec"`
	HeapBytes       uint64      `json:"heap_bytes"`
	Stragglers      []Straggler `json:"stragglers,omitempty"`
}

// ActiveRun is one in-flight replication in a snapshot.
type ActiveRun struct {
	Key        string  `json:"key"`
	Seed       int64   `json:"seed"`
	RunningSec float64 `json:"running_sec"`
}

// Straggler is one run that ran far past the median of its peers.
type Straggler struct {
	Key       string  `json:"key"`
	Seed      int64   `json:"seed"`
	Sec       float64 `json:"sec"`
	MedianSec float64 `json:"median_sec"`
}

// NewHealth returns a heartbeat collector. Straggler lines go to stderr
// until SetStragglerLog redirects them.
func NewHealth() *Health {
	return &Health{
		start:        time.Now(),
		stragglerOut: os.Stderr,
		active:       map[uint64]activeRun{},
	}
}

// SetStatusPath makes every state change (throttled) and every explicit
// WriteStatus persist a snapshot to path via atomic write-rename.
func (h *Health) SetStatusPath(path string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.statusPath = path
}

// SetStragglerLog redirects straggler log lines (nil silences them).
func (h *Health) SetStragglerLog(w io.Writer) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stragglerOut = w
}

// RunStarted registers an in-flight replication attempt and returns its
// handle for RunFinished. Exported so run-capable CLIs that drive
// core.Run directly (wtcp-sim) can feed the same heartbeat.
func (h *Health) RunStarted(key string, seed int64) uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	id := h.nextID
	h.active[id] = activeRun{key: key, seed: seed, started: time.Now()}
	return id
}

// RunFinished retires an attempt: events feeds the throughput gauge, ok
// distinguishes a completed run from a failed/aborted attempt. Runs far
// beyond the completed-run median are appended to the straggler log.
func (h *Health) RunFinished(id uint64, events uint64, ok bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	ar, tracked := h.active[id]
	delete(h.active, id)
	h.events += events
	var line string
	if ok {
		h.completed++
		if tracked {
			sec := time.Since(ar.started).Seconds()
			if med, n := medianOf(h.durations), len(h.durations); n >= stragglerMinSamples && sec > stragglerFactor*med {
				if len(h.stragglers) < maxStragglers {
					h.stragglers = append(h.stragglers, Straggler{Key: ar.key, Seed: ar.seed, Sec: sec, MedianSec: med})
				}
				line = fmt.Sprintf("experiment: straggler: %s seed %d took %.2fs (median %.2fs over %d runs)\n",
					ar.key, ar.seed, sec, med, n)
			}
			h.durations = append(h.durations, sec)
		}
	} else {
		h.failed++
	}
	out := h.stragglerOut
	h.mu.Unlock()
	if line != "" && out != nil {
		fmt.Fprint(out, line)
	}
	h.maybeWriteStatus()
}

// noteRetry counts one perturbed-seed retry.
func (h *Health) noteRetry() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.retried++
	h.mu.Unlock()
}

// noteQuarantine counts one point removed by the circuit breaker.
func (h *Health) noteQuarantine() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.quarantined++
	h.mu.Unlock()
	h.maybeWriteStatus()
}

// medianOf returns the median of xs (0 when empty). xs is not modified.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Snapshot captures the current heartbeat.
func (h *Health) Snapshot() HealthSnapshot {
	if h == nil {
		return HealthSnapshot{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HealthSnapshot{
		Timestamp:       now,
		UptimeSec:       now.Sub(h.start).Seconds(),
		Completed:       h.completed,
		Failed:          h.failed,
		Retried:         h.retried,
		Quarantined:     h.quarantined,
		EventsProcessed: h.events,
		MedianRunSec:    medianOf(h.durations),
		HeapBytes:       ms.HeapAlloc,
		Stragglers:      append([]Straggler(nil), h.stragglers...),
	}
	if snap.UptimeSec > 0 {
		snap.EventsPerSec = float64(h.events) / snap.UptimeSec
	}
	for _, ar := range h.active {
		snap.ActiveRuns = append(snap.ActiveRuns, ActiveRun{
			Key: ar.key, Seed: ar.seed, RunningSec: now.Sub(ar.started).Seconds(),
		})
	}
	sort.Slice(snap.ActiveRuns, func(i, j int) bool {
		a, b := snap.ActiveRuns[i], snap.ActiveRuns[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Seed < b.Seed
	})
	return snap
}

// String renders the snapshot for humans (the SIGUSR1 dump).
func (h *Health) String() string {
	snap := h.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "engine health @ %s (up %.1fs)\n", snap.Timestamp.Format(time.RFC3339), snap.UptimeSec)
	fmt.Fprintf(&b, "  runs: %d completed, %d failed, %d retried, %d quarantined, %d active\n",
		snap.Completed, snap.Failed, snap.Retried, snap.Quarantined, len(snap.ActiveRuns))
	fmt.Fprintf(&b, "  events: %d total, %.0f/s; median run %.2fs; heap %d MiB\n",
		snap.EventsProcessed, snap.EventsPerSec, snap.MedianRunSec, snap.HeapBytes>>20)
	for _, ar := range snap.ActiveRuns {
		fmt.Fprintf(&b, "  active: %s seed %d (%.1fs)\n", ar.Key, ar.Seed, ar.RunningSec)
	}
	for _, s := range snap.Stragglers {
		fmt.Fprintf(&b, "  straggler: %s seed %d took %.2fs (median %.2fs)\n", s.Key, s.Seed, s.Sec, s.MedianSec)
	}
	return b.String()
}

// maybeWriteStatus persists a snapshot when a status path is configured,
// throttled so a fast sweep doesn't rewrite the file per replication.
func (h *Health) maybeWriteStatus() {
	if h == nil {
		return
	}
	h.mu.Lock()
	path := h.statusPath
	due := path != "" && time.Since(h.lastWrite) >= statusWriteInterval
	if due {
		h.lastWrite = time.Now()
	}
	h.mu.Unlock()
	if due {
		if err := h.WriteStatus(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment: write status: %v\n", err)
		}
	}
}

// WriteStatus writes the current snapshot to the configured status path
// with the same temp-write-then-rename discipline as checkpoints, so a
// poller never reads a torn file. No-op without a status path.
func (h *Health) WriteStatus() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	path := h.statusPath
	h.mu.Unlock()
	if path == "" {
		return nil
	}
	data, err := h.SnapshotJSON()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: status dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("experiment: status temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: write status: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: close status: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: commit status: %w", err)
	}
	return nil
}

// Heartbeat wires up the standard CLI heartbeat in one call: status
// snapshots persist to statusPath (throttled on state changes, plus a
// final write at stop), and SIGUSR1 dumps the human-readable snapshot
// to sigDump. Every run-capable entry point (wtcp-sim, wtcp-figures,
// wtcp-report, wtcpd) goes through here so the status-file schema and
// signal behaviour cannot drift between them. The returned stop is
// idempotent.
func (h *Health) Heartbeat(statusPath string, sigDump io.Writer) (stop func()) {
	if h == nil {
		return func() {}
	}
	h.SetStatusPath(statusPath)
	stopSig := h.NotifyOnSignal(sigDump)
	var once sync.Once
	return func() {
		once.Do(func() {
			stopSig()
			if err := h.WriteStatus(); err != nil {
				fmt.Fprintf(os.Stderr, "experiment: write status: %v\n", err)
			}
		})
	}
}

// SnapshotJSON renders the current snapshot in the status-file schema
// (trailing newline included) — the same bytes WriteStatus persists.
// wtcpd serves this from /healthz.
func (h *Health) SnapshotJSON() ([]byte, error) {
	data, err := json.MarshalIndent(h.Snapshot(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("experiment: encode status: %w", err)
	}
	return append(data, '\n'), nil
}

// MedianRunSeconds returns the median wall-clock duration of completed
// runs, 0 until enough have finished. wtcpd's admission controller
// derives Retry-After hints from it.
func (h *Health) MedianRunSeconds() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return medianOf(h.durations)
}

// StartPolling rewrites the status file every interval until the
// returned stop function is called. Useful for long sweeps where state
// changes (and therefore implicit writes) are minutes apart.
func (h *Health) StartPolling(interval time.Duration) (stop func()) {
	if h == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := h.WriteStatus(); err != nil {
					fmt.Fprintf(os.Stderr, "experiment: write status: %v\n", err)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
