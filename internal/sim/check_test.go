package sim

import (
	"errors"
	"testing"
	"time"
)

func TestMonotonic(t *testing.T) {
	v := int64(0)
	chk := Monotonic("counter", func() int64 { return v })
	for _, step := range []int64{0, 5, 5, 9} {
		v = step
		if err := chk(); err != nil {
			t.Fatalf("monotone advance to %d rejected: %v", step, err)
		}
	}
	v = 3
	if err := chk(); err == nil {
		t.Error("backwards move 9 -> 3 not detected")
	}
}

func TestConservation(t *testing.T) {
	limit, have := int64(10), int64(10)
	chk := Conservation("test", func() int64 { return limit }, func() int64 { return have })
	if err := chk(); err != nil {
		t.Fatalf("have == limit rejected: %v", err)
	}
	have = 11
	if err := chk(); err == nil {
		t.Error("have > limit not detected")
	}
}

func TestCheckNowReportsViolation(t *testing.T) {
	s := New()
	bad := errors.New("broken")
	s.AddCheck("ok", func() error { return nil })
	s.AddCheck("bad", func() error { return bad })
	err := s.CheckNow()
	if err == nil {
		t.Fatal("violation not reported")
	}
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Name != "bad" || !errors.Is(err, bad) {
		t.Errorf("err = %v, want CheckError wrapping the violation under name \"bad\"", err)
	}
	if s.Failure() == nil {
		t.Error("failure not recorded on the simulator")
	}
}

func TestEnableChecksHaltsRun(t *testing.T) {
	s := New()
	v := int64(0)
	s.AddCheck("mono", Monotonic("v", func() int64 { return v }))
	s.EnableChecks(time.Second)
	// Advance the value, then break monotonicity between check ticks.
	s.Schedule(1500*time.Millisecond, func() { v = 10 })
	s.Schedule(2500*time.Millisecond, func() { v = 2 })
	keepAlive := func() {}
	for i := 1; i <= 20; i++ {
		s.Schedule(time.Duration(i)*time.Second, keepAlive)
	}
	err := s.Run(30 * time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped from the failing check", err)
	}
	var ce *CheckError
	if f := s.Failure(); !errors.As(f, &ce) {
		t.Fatalf("Failure() = %v, want *CheckError", f)
	}
	if ce.At < 3*time.Second || ce.At > 4*time.Second {
		t.Errorf("violation detected at %v, want the first tick after the regression", ce.At)
	}
}

func TestEnableChecksIdempotent(t *testing.T) {
	s := New()
	calls := 0
	s.AddCheck("count", func() error { calls++; return nil })
	s.EnableChecks(time.Second)
	s.EnableChecks(time.Second) // second call must not double the runner
	if err := s.Run(3500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("check ran %d times over 3.5s, want 3 (one runner)", calls)
	}
}

func TestHeapCheckCleanSimulation(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.CheckNow(); err != nil {
		t.Errorf("healthy heap flagged: %v", err)
	}
}

func TestWatchdogAbortsOnStall(t *testing.T) {
	s := New()
	progress := int64(0)
	s.StartWatchdog(time.Second, func() int64 { return progress }, func() string { return "state dump" })
	// Progress moves once at 500ms, then stalls forever.
	s.Schedule(500*time.Millisecond, func() { progress = 7 })
	keepAlive := func() {}
	for i := 1; i <= 20; i++ {
		s.Schedule(time.Duration(i)*time.Second, keepAlive)
	}
	err := s.Run(0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped from the watchdog", err)
	}
	var se *StallError
	if f := s.Failure(); !errors.As(f, &se) {
		t.Fatalf("Failure() = %v, want *StallError", f)
	}
	if se.Progress != 7 {
		t.Errorf("stuck progress = %d, want 7", se.Progress)
	}
	// Detection latency is between stall and 2*stall after the last change.
	if lag := se.At - se.Since; lag < time.Second || lag > 2*time.Second {
		t.Errorf("declared stall after %v of no progress, want within [1s, 2s]", lag)
	}
	if se.Snapshot != "state dump" {
		t.Errorf("snapshot = %q", se.Snapshot)
	}
}

func TestWatchdogToleratesSteadyProgress(t *testing.T) {
	s := New()
	progress := int64(0)
	s.StartWatchdog(time.Second, func() int64 { return progress }, nil)
	for i := 1; i <= 10; i++ {
		i := i
		s.Schedule(time.Duration(i)*800*time.Millisecond, func() { progress = int64(i) })
	}
	if err := s.Run(8 * time.Second); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if f := s.Failure(); f != nil {
		t.Errorf("watchdog fired despite steady progress: %v", f)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	s := New()
	s.StartWatchdog(0, func() int64 { return 0 }, nil)
	s.StartWatchdog(time.Second, nil, nil)
	if s.Pending() != 0 {
		t.Error("disabled watchdog scheduled events")
	}
}

func TestStepSurfacesRegisteredFailure(t *testing.T) {
	s := New()
	s.AddCheck("always-bad", func() error { return errors.New("boom") })
	s.EnableChecks(time.Second)
	s.Schedule(10*time.Second, func() {})
	// Drive by Step, as core's run loops do: the loop must terminate with
	// the failure surfaced through Step's error, not silently via !ok.
	var stepErr error
	for i := 0; i < 1000; i++ {
		ok, err := s.Step()
		if err != nil {
			stepErr = err
			break
		}
		if !ok {
			t.Fatal("queue drained without surfacing the failing check")
		}
	}
	var ce *CheckError
	if !errors.As(stepErr, &ce) {
		t.Fatalf("Step error = %v, want *CheckError", stepErr)
	}
	if ce.Name != "always-bad" {
		t.Errorf("check name = %q", ce.Name)
	}
	if !errors.Is(stepErr, s.Failure()) {
		t.Error("Step error and Failure() disagree")
	}
	// Subsequent Steps keep reporting the same failure and never execute.
	if ok, err := s.Step(); ok || err == nil {
		t.Errorf("Step after failure = (%v, %v), want (false, failure)", ok, err)
	}
}

func TestFailRecordsExternalFailure(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(time.Second, func() {
		s.Fail("oracle", errors.New("rule violated"))
	})
	s.Schedule(2*time.Second, func() { fired = true })
	ok, err := s.Step()
	if !ok || err != nil {
		t.Fatalf("first Step = (%v, %v)", ok, err)
	}
	ok, err = s.Step()
	if ok || err == nil {
		t.Fatalf("Step after Fail = (%v, %v), want halt", ok, err)
	}
	var ce *CheckError
	if !errors.As(err, &ce) || ce.Name != "oracle" || ce.At != time.Second {
		t.Errorf("failure = %v", err)
	}
	if fired {
		t.Error("event executed after Fail halted the run")
	}
	// Only the first failure is kept.
	s.Fail("second", errors.New("later"))
	if !errors.As(s.Failure(), &ce) || ce.Name != "oracle" {
		t.Errorf("first failure not preserved: %v", s.Failure())
	}
}
