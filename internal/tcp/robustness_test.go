package tcp

import (
	"testing"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/units"
)

func TestAckBeyondSndMaxIgnored(t *testing.T) {
	cfg := wanConfig()
	cfg.Total = 500 * units.KB // still in flight when the forgery arrives
	l := newLoop(t, cfg, 20*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	una := l.snd.SndUna()
	// A forged ack far beyond anything sent must be dropped.
	l.snd.Receive(&packet.Packet{Kind: packet.Ack, AckNo: 1 << 40})
	if l.snd.SndUna() != una {
		t.Error("forged ack advanced snd_una")
	}
	if l.snd.Done() {
		t.Error("forged ack completed the transfer")
	}
	// The connection still finishes normally.
	if err := l.s.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !l.snd.Done() {
		t.Error("transfer did not complete after forged ack")
	}
}

func TestOldAckIgnored(t *testing.T) {
	l := newLoop(t, wanConfig(), 20*time.Millisecond)
	l.snd.Start()
	if err := l.s.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	una := l.snd.SndUna()
	if una == 0 {
		t.Fatal("no progress")
	}
	cwnd := l.snd.Cwnd()
	// A stale ack below snd_una neither grows the window nor counts as a
	// dupack.
	l.snd.Receive(&packet.Packet{Kind: packet.Ack, AckNo: una - 536})
	if l.snd.Cwnd() != cwnd {
		t.Error("old ack changed cwnd")
	}
	if l.snd.Stats().DupAcksReceived != 0 {
		t.Error("old ack counted as duplicate")
	}
}

func TestCongestionAvoidanceGrowth(t *testing.T) {
	// Force congestion avoidance by setting a low ssthresh via an early
	// loss, then verify sub-linear (per-ack) growth: after one full
	// window of acks, cwnd grows by about one MSS.
	cfg := wanConfig()
	cfg.Total = 200 * units.KB
	cfg.Window = 16 * units.KB
	l := newLoop(t, cfg, 30*time.Millisecond)
	dropped := false
	l.dropData = func(p *packet.Packet) bool {
		if !dropped && p.Seq == 8*536 && !p.Retransmit {
			dropped = true
			return true
		}
		return false
	}
	l.snd.Start()
	if err := l.s.Run(4 * time.Second); err != nil { // past the recovery
		t.Fatal(err)
	}
	ss := l.snd.Ssthresh()
	if l.snd.Cwnd() < ss {
		// Wait until slow start has reached ssthresh again.
		if err := l.s.Run(8 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	start := l.snd.Cwnd()
	if start < ss {
		t.Skipf("cwnd %d below ssthresh %d; recovery slower than expected", start, ss)
	}
	// One RTT is ~60ms; run a few RTTs and verify growth is ~1 MSS/RTT,
	// not 1 MSS/ack.
	if err := l.s.Run(8*time.Second + 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	growth := l.snd.Cwnd() - start
	if growth <= 0 {
		t.Skip("no acks in window (transfer may have finished)")
	}
	// ~5 RTTs: linear growth is ~5 MSS; slow start would give ~2^5x.
	if growth > 10*536 {
		t.Errorf("growth %d bytes over ~5 RTTs looks exponential", growth)
	}
}

func TestZeroAckAtStartIsNotDuplicate(t *testing.T) {
	l := newLoop(t, wanConfig(), 20*time.Millisecond)
	l.snd.Start()
	// An ack of 0 while data is outstanding is a dupack by definition
	// (ackNo == sndUna, outstanding data) — it must count and not crash.
	l.snd.Receive(&packet.Packet{Kind: packet.Ack, AckNo: 0})
	if l.snd.Stats().DupAcksReceived != 1 {
		t.Errorf("DupAcksReceived = %d", l.snd.Stats().DupAcksReceived)
	}
}

func TestReceiveIgnoresIrrelevantKinds(t *testing.T) {
	l := newLoop(t, wanConfig(), 20*time.Millisecond)
	l.snd.Start()
	before := l.snd.Stats()
	l.snd.Receive(&packet.Packet{Kind: packet.Data, Seq: 0, Payload: 536})
	l.snd.Receive(&packet.Packet{Kind: packet.Fragment})
	l.snd.Receive(&packet.Packet{Kind: packet.LinkAck})
	if l.snd.Stats() != before {
		t.Error("irrelevant packet kinds changed sender state")
	}
}

func TestSenderAccessors(t *testing.T) {
	l := newLoop(t, wanConfig(), 20*time.Millisecond)
	if l.snd.SndUna() != 0 || l.snd.SndNxt() != 0 {
		t.Error("fresh sender sequence state not zero")
	}
	if l.snd.Cwnd() != 536 {
		t.Errorf("initial cwnd = %d, want one MSS", l.snd.Cwnd())
	}
	if l.snd.Ssthresh() != 4*units.KB {
		t.Errorf("initial ssthresh = %d, want the window", l.snd.Ssthresh())
	}
	if l.snd.RTOEstimator() == nil {
		t.Error("nil estimator accessor")
	}
}
