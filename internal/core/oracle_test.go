package core

import (
	"errors"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/chaos"
	"wtcp/internal/oracle"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// The conformance oracle must stay silent on every legitimate run: a
// violation on an unmodified simulator is a checker bug (or a real
// protocol bug, which is worse). These tests sweep the paper's scenarios
// with the oracle armed.

func TestOracleCleanAcrossSchemes(t *testing.T) {
	schemes := []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN, bs.SourceQuench, bs.Snoop}
	for _, scheme := range schemes {
		for _, seed := range []int64{1, 5} {
			cfg := WAN(scheme, 576, 2*time.Second)
			cfg.TransferSize = 30 * units.KB
			cfg.Seed = seed
			cfg.Oracle = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v seed %d: %v", scheme, seed, err)
			}
			if !res.Completed {
				t.Errorf("%v seed %d: transfer did not complete", scheme, seed)
			}
			if res.Trace != nil || res.Cwnd != nil {
				t.Errorf("%v seed %d: oracle-only run retained a trace", scheme, seed)
			}
		}
	}
}

func TestOracleCleanOnLAN(t *testing.T) {
	for _, scheme := range []bs.Scheme{bs.LocalRecovery, bs.EBSN} {
		cfg := LAN(scheme, 800*time.Millisecond)
		cfg.TransferSize = units.MB
		cfg.Oracle = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !res.Completed {
			t.Errorf("%v: transfer did not complete", scheme)
		}
	}
}

func TestOracleCleanWithAblations(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"reno", func(c *Config) { c.Variant = tcp.Reno }},
		{"newreno", func(c *Config) { c.Variant = tcp.NewReno }},
		{"delayed-acks", func(c *Config) { c.DelayedAcks = true }},
		{"ecn", func(c *Config) { c.ECN = true }},
		{"sack", func(c *Config) { c.SACK = true }},
		{"cross-traffic", func(c *Config) {
			c.CrossTraffic = CrossTraffic{Rate: 20 * units.Kbps}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := WAN(bs.EBSN, 576, 2*time.Second)
			cfg.TransferSize = 30 * units.KB
			cfg.Oracle = true
			tc.mod(&cfg)
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Completed {
				t.Error("transfer did not complete")
			}
		})
	}
}

func TestOracleCleanWithCollectTrace(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Oracle = true
	cfg.CollectTrace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Trace == nil || res.Cwnd == nil {
		t.Fatal("CollectTrace run lost its trace")
	}
	if res.Trace.Count(1) == 0 { // trace.Send
		t.Error("trace recorded no sends")
	}
}

func TestOracleCleanOnWorkloads(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.Oracle = true
	web, err := RunWeb(cfg, WebWorkload{Pages: 4, PageSize: 4 * units.KB, ThinkTime: time.Second})
	if err != nil {
		t.Fatalf("web: %v", err)
	}
	if !web.Completed {
		t.Error("web workload did not complete")
	}

	cfg = WAN(bs.EBSN, 576, 2*time.Second)
	cfg.Oracle = true
	tl, err := RunTelnet(cfg, TelnetWorkload{Keystrokes: 40, Interval: 300 * time.Millisecond, WriteSize: 4})
	if err != nil {
		t.Fatalf("telnet: %v", err)
	}
	if !tl.Completed {
		t.Error("telnet workload did not complete")
	}
}

// TestOracleOnSplitConnection checks that split-connection runs carry a
// conformance checker on each half: both the wired and the wireless TCP
// must be oracle-clean under the run's variant profile.
func TestOracleOnSplitConnection(t *testing.T) {
	for _, v := range []tcp.Variant{tcp.Tahoe, tcp.Reno, tcp.NewReno, tcp.SACKVariant} {
		cfg := WAN(bs.SplitConnection, 576, 2*time.Second)
		cfg.Oracle = true
		cfg.Variant = v
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: oracle tripped on split run: %v", v, err)
		}
		if !res.Completed {
			t.Fatalf("%v: split run did not complete", v)
		}
	}
}

// TestChaosNotifyDuplicationTripsOracle injects the EBSN-duplication
// fault and requires the conformance layer to catch it: the source then
// resets its RTO more often than the base station sent notifications,
// which breaks the ebsn/reset-without-notification rule. This is the
// fault-to-oracle coupling the chaos subsystem exists to exercise.
func TestChaosNotifyDuplicationTripsOracle(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 4*time.Second)
	cfg.TransferSize = 50 * units.KB
	cfg.Oracle = true
	cfg.Chaos = &chaos.Config{Notify: chaos.NotifyFaults{DupProb: 1}}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("duplicated EBSNs must trip the oracle")
	}
	var v *oracle.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %v does not unwrap to a *oracle.Violation", err)
	}
	if v.Rule != "ebsn/reset-without-notification" {
		t.Errorf("rule = %q, want ebsn/reset-without-notification", v.Rule)
	}
	if v.Index < 0 {
		t.Errorf("violation index = %d", v.Index)
	}
}

// TestOracleCleanUnderBenignChaos checks the other side of the coupling:
// faults that only perturb the network (loss storms, blackouts, link
// corruption) must NOT trip the protocol oracles — the protocol is
// supposed to survive them, and the checker must not mistake recovery
// for misbehaviour.
func TestOracleCleanUnderBenignChaos(t *testing.T) {
	cfg := WAN(bs.EBSN, 576, 2*time.Second)
	cfg.TransferSize = 30 * units.KB
	cfg.Oracle = true
	cfg.Chaos = &chaos.Config{
		Blackouts: []chaos.Blackout{{Link: chaos.WirelessDown, At: 5 * time.Second, Length: 2 * time.Second}},
		Storms:    []chaos.Storm{{Link: chaos.WirelessUp, At: 20 * time.Second, Length: 2 * time.Second, LossProb: 0.5}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("benign chaos tripped the oracle: %v", err)
	}
	if res.Aborted {
		t.Logf("run aborted by watchdog (acceptable under chaos): %s", res.AbortReason)
	}
}
