package chaos

import (
	"encoding/json"
	"testing"
)

func TestServeFaultsRollDeterministic(t *testing.T) {
	f := &ServeFaults{MalformedProb: 0.2, DisconnectProb: 0.2, SlowProb: 0.1, SlowMs: 50, Seed: 7}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	g := &ServeFaults{MalformedProb: 0.2, DisconnectProb: 0.2, SlowProb: 0.1, SlowMs: 50, Seed: 7}
	for i := uint64(0); i < 200; i++ {
		if f.Roll(i) != g.Roll(i) {
			t.Fatalf("roll %d not deterministic: %v vs %v", i, f.Roll(i), g.Roll(i))
		}
	}
	other := &ServeFaults{MalformedProb: 0.2, DisconnectProb: 0.2, SlowProb: 0.1, SlowMs: 50, Seed: 8}
	same := 0
	for i := uint64(0); i < 200; i++ {
		if f.Roll(i) == other.Roll(i) {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed does not influence the fault schedule")
	}
}

func TestServeFaultsRollPartitions(t *testing.T) {
	f := &ServeFaults{MalformedProb: 0.3, DisconnectProb: 0.3, SlowProb: 0.2, SlowMs: 10, Seed: 3}
	counts := map[ServeFault]int{}
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		counts[f.Roll(i)]++
	}
	check := func(fault ServeFault, want float64) {
		got := float64(counts[fault]) / n
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("%v frequency = %.3f, want ~%.2f", fault, got, want)
		}
	}
	check(ServeMalformed, 0.3)
	check(ServeDisconnect, 0.3)
	check(ServeSlowLoris, 0.2)
	check(ServeNone, 0.2)
}

func TestServeFaultsZeroValueInjectsNothing(t *testing.T) {
	var f *ServeFaults
	if f.Enabled() {
		t.Fatal("nil plan reports enabled")
	}
	zero := &ServeFaults{}
	for i := uint64(0); i < 100; i++ {
		if got := zero.Roll(i); got != ServeNone {
			t.Fatalf("zero-value plan rolled %v at %d", got, i)
		}
	}
}

// TestServeFaultsCorruptUndecodable pins the property the serve layer
// relies on: a corrupted body must never decode as valid JSON, for any
// request index, or a "malformed" request could silently admit.
func TestServeFaultsCorruptUndecodable(t *testing.T) {
	f := &ServeFaults{MalformedProb: 1, Seed: 11}
	bodies := [][]byte{
		[]byte(`{"scenario":{"preset":"wan","mean_bad":"4s"},"replications":3}`),
		[]byte(`{"campaign":{"sweeps":["fig7"]}}`),
		[]byte(`{}`),
		[]byte(`{"a":1}`),
		[]byte(`x`),
		nil,
	}
	for _, body := range bodies {
		for i := uint64(0); i < 64; i++ {
			bad := f.Corrupt(body, i)
			var v any
			if json.Unmarshal(bad, &v) == nil {
				t.Fatalf("Corrupt(%q, %d) = %q decodes as valid JSON", body, i, bad)
			}
			if len(body) >= 2 && len(bad) >= len(body) {
				t.Fatalf("Corrupt(%q, %d) = %q is not a strict prefix", body, i, bad)
			}
		}
	}
}

func TestServeFaultsValidate(t *testing.T) {
	bad := []ServeFaults{
		{MalformedProb: -0.1},
		{MalformedProb: 1.1},
		{MalformedProb: 0.6, DisconnectProb: 0.6},
		{SlowProb: 0.5},
		{SlowProb: 0.5, SlowMs: -1},
	}
	for _, f := range bad {
		f := f
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid plan", f)
		}
	}
	if _, err := ParseServe([]byte(`{"malformed_prob":0.2,"typo":1}`)); err == nil {
		t.Error("ParseServe accepted an unknown field")
	}
	if p, err := ParseServe([]byte(`{"malformed_prob":0.2,"seed":4}`)); err != nil || !p.Enabled() {
		t.Errorf("ParseServe rejected a valid plan: %v", err)
	}
}
