# Convenience targets for the wtcp reproduction.

GO ?= go

.PHONY: all build vet test test-race bench figures traces report fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every paper figure at publication fidelity.
figures:
	$(GO) run ./cmd/wtcp-figures -fig all -reps 10

traces:
	$(GO) run ./cmd/wtcp-trace -scheme basic
	$(GO) run ./cmd/wtcp-trace -scheme localrecovery
	$(GO) run ./cmd/wtcp-trace -scheme ebsn

# Rebuild REPLICATION.md from live runs (fails if any claim regresses).
report:
	$(GO) run ./cmd/wtcp-report -reps 10 > REPLICATION.md

fuzz:
	$(GO) test -fuzz=FuzzReassembler -fuzztime=30s ./internal/ip
	$(GO) test -fuzz=FuzzSenderAckStream -fuzztime=30s ./internal/tcp

clean:
	$(GO) clean ./...
