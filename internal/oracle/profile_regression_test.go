package oracle

import (
	"testing"

	"wtcp/internal/tcp"
	"wtcp/internal/trace"
)

// TestTahoeProfileRegression is the refactor-regression gate for the
// profile split: every legacy violation fixture must be flagged with the
// exact same rule name at the exact same event index as before the
// Tahoe/ARQ rules became the tahoe conformance profile. A rename, a
// reordering of checks, or a shifted detection point all fail here.
func TestTahoeProfileRegression(t *testing.T) {
	withTimeout := func() []trace.Event { return append(slowStartPrefix(), timeoutSuffix()...) }
	mut := func(events []trace.Event, i int, f func(*trace.Event)) []trace.Event {
		f(&events[i])
		return events
	}

	cases := []struct {
		name   string
		events []trace.Event
		rule   string
		index  int
	}{
		{"slow-start overgrowth", mut(slowStartPrefix(), 1, func(e *trace.Event) { e.Cwnd = 3 * mss }),
			"tahoe/cwnd-growth", 1},
		{"no growth", mut(slowStartPrefix(), 1, func(e *trace.Event) { e.Cwnd = mss }),
			"tahoe/cwnd-growth", 1},
		{"timeout without collapse", mut(withTimeout(), 4, func(e *trace.Event) { e.Cwnd = 2 * mss }),
			"tcp/timeout-collapse", 4},
		{"timeout without halving", mut(withTimeout(), 4, func(e *trace.Event) { e.Ssthresh = win }),
			"tcp/timeout-ssthresh", 4},
		{"timeout without rewind", mut(withTimeout(), 4, func(e *trace.Event) { e.SndNxt = 3 * mss; e.Seq = mss }),
			"tcp/timeout-rewind", 4},
		{"timeout without backoff", mut(withTimeout(), 4, func(e *trace.Event) {
			e.Shift = 0
			e.RTO = rto0
			e.Deadline = 4*sec + rto0
		}), "tcp/rto-backoff", 4},
		{"timeout with foreign deadline", mut(withTimeout(), 4, func(e *trace.Event) { e.Deadline = 20 * sec }),
			"tcp/timer-restart-on-timeout", 4},
	}

	// Three dupacks with no fast retransmit.
	missed := []trace.Event{{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
		Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0}}
	for i := 1; i <= 3; i++ {
		missed = append(missed, trace.Event{At: sec, Kind: trace.AckIn, Ack: 0,
			AckClass: int(tcp.AckDup), DupAcks: i,
			SndUna: 0, SndNxt: mss, SndMax: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0})
	}
	cases = append(cases, struct {
		name   string
		events []trace.Event
		rule   string
		index  int
	}{"missed fast retransmit", missed, "tahoe/missed-fast-retransmit", 3})

	// Fast retransmit that keeps the window or backs the timer off.
	frPrefix := []trace.Event{
		{At: 0, Kind: trace.Send, Seq: 0, Payload: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
		{At: sec, Kind: trace.AckIn, Ack: 0, AckClass: int(tcp.AckDup), DupAcks: 1,
			SndUna: 0, SndNxt: mss, SndMax: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
		{At: sec, Kind: trace.AckIn, Ack: 0, AckClass: int(tcp.AckDup), DupAcks: 2,
			SndUna: 0, SndNxt: mss, SndMax: mss,
			Cwnd: 4 * mss, Ssthresh: win, RTO: rto0, Deadline: rto0},
	}
	fr := trace.Event{At: sec, Kind: trace.FastRetx, Seq: 0,
		SndUna: 0, SndNxt: 0, SndMax: mss,
		Cwnd: mss, Ssthresh: 2 * mss, RTO: rto0, Deadline: sec + rto0}
	noCollapse := fr
	noCollapse.Cwnd = 2 * mss
	backedOff := fr
	backedOff.Shift = 1
	backedOff.RTO = 2 * rto0
	backedOff.Deadline = sec + 2*rto0
	cases = append(cases,
		struct {
			name   string
			events []trace.Event
			rule   string
			index  int
		}{"fastretx without collapse", append(append([]trace.Event{}, frPrefix...), noCollapse),
			"tahoe/fastretx-collapse", 3},
		struct {
			name   string
			events []trace.Event
			rule   string
			index  int
		}{"fastretx with backoff", append(append([]trace.Event{}, frPrefix...), backedOff),
			"tahoe/fastretx-no-backoff", 3},
	)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantViolation(t, Check(baseCfg(), tc.events), tc.rule, tc.index)
		})
	}

	// And the conforming fixtures must still be accepted.
	if v := Check(baseCfg(), withTimeout()); v != nil {
		t.Errorf("conforming Tahoe stream rejected after profile split: %v", v)
	}
	clean := append(append([]trace.Event{}, frPrefix...), fr)
	if v := Check(baseCfg(), clean); v != nil {
		t.Errorf("conforming fast retransmit rejected after profile split: %v", v)
	}
}

// TestProfilePrefixes pins the rule-namespace contract: Tahoe violations
// carry the tahoe/ prefix, and each fast-recovery variant names itself
// (reno/, newreno/, sack/) so a failed metamorphic or zoo run points at
// the right state machine.
func TestProfilePrefixes(t *testing.T) {
	for _, tc := range []struct {
		variant tcp.Variant
		prefix  string
	}{
		{tcp.Tahoe, "tahoe"},
		{tcp.Reno, "reno"},
		{tcp.NewReno, "newreno"},
		{tcp.SACKVariant, "sack"},
	} {
		if got := profileFor(tc.variant).prefix(); got != tc.prefix {
			t.Errorf("profileFor(%v).prefix() = %q, want %q", tc.variant, got, tc.prefix)
		}
	}
}
