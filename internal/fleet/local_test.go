package fleet

import (
	"context"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"wtcp/internal/chaos"
	"wtcp/internal/experiment"
)

// integrationCampaign is a real-simulation campaign sized for tests:
// fig7 (2 points) plus lan (2 points), two replications each.
func integrationCampaign() Campaign {
	return Campaign{
		Sweeps:       []string{experiment.SweepFig7, experiment.SweepLAN},
		Replications: 2,
		TransferKB:   20,
		PacketSizes:  []int{128, 512},
		BadPeriods:   []string{"1s"},
		Oracle:       true,
	}
}

// sequentialResults runs the campaign's sweeps on the plain sequential
// engine and returns the figure points.
func sequentialResults(t *testing.T, c Campaign, checkpoint string) ([]experiment.ThroughputPoint, []experiment.LANPoint) {
	t.Helper()
	opt, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	opt.Checkpoint = checkpoint
	fig7, err := experiment.Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	lan, err := experiment.LANStudy(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return fig7, lan
}

// TestShardedMatchesSequential is the core merge guarantee: a campaign
// sharded over in-process workers produces a ledger from which the
// sequential engine reloads every point, yielding results identical bit
// for bit to a fresh single-process run.
func TestShardedMatchesSequential(t *testing.T) {
	c := integrationCampaign()

	// Fresh sequential run, no checkpoint: the reference.
	wantFig7, wantLAN := sequentialResults(t, c, "")

	// Sharded run into a ledger.
	ledger := filepath.Join(t.TempDir(), "ledger.json")
	snap, err := RunLocal(context.Background(), LocalOptions{
		Campaign:   c,
		Workers:    3,
		LedgerPath: ledger,
		Log:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Settled != snap.TotalUnits || snap.TotalUnits != 4 {
		t.Fatalf("campaign settled %d/%d, want 4/4", snap.Settled, snap.TotalUnits)
	}

	// Merge pass: the sequential engine pointed at the ledger reloads
	// every point (OnPoint would fire for freshly computed ones — it
	// must never fire here).
	opt, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	opt.Checkpoint = ledger
	opt.OnPoint = func(key string) { t.Errorf("point %s recomputed during merge; ledger should hold it", key) }
	gotFig7, err := experiment.Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	gotLAN, err := experiment.LANStudy(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(wantFig7, gotFig7) {
		t.Errorf("fig7 from sharded ledger differs from sequential run:\nwant %s\ngot  %s",
			renderTput(wantFig7), renderTput(gotFig7))
	}
	if !reflect.DeepEqual(wantLAN, gotLAN) {
		t.Errorf("lan study from sharded ledger differs from sequential run")
	}
}

// renderTput summarizes throughput points (hex floats, so a one-bit
// difference is visible) for failure messages.
func renderTput(ps []experiment.ThroughputPoint) string {
	out := ""
	for _, p := range ps {
		out += p.BadPeriod.String() + "/" + p.PacketSize.String() + ":"
		for _, v := range p.ThroughputKbps.Values() {
			out += " " + strconv.FormatFloat(v, 'x', -1, 64)
		}
		out += ";"
	}
	return out
}

// TestChaoticBoundaryStillExact injects heavy RPC faults — every result
// post duplicated, renewals dropped half the time — and asserts the
// campaign still completes with every point counted exactly once and
// bit-identical results.
func TestChaoticBoundaryStillExact(t *testing.T) {
	c := integrationCampaign()
	wantFig7, wantLAN := sequentialResults(t, c, "")

	ledger := filepath.Join(t.TempDir(), "ledger.json")
	snap, err := RunLocal(context.Background(), LocalOptions{
		Campaign:   c,
		Workers:    3,
		LedgerPath: ledger,
		LeaseTTL:   time.Second,
		Faults: &chaos.FleetFaults{
			Renew:  chaos.RPCFaults{DropProb: 0.5},
			Result: chaos.RPCFaults{DupProb: 1.0},
			Seed:   7,
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Settled != 4 {
		t.Fatalf("campaign settled %d/4 under chaos", snap.Settled)
	}
	if snap.Duplicates == 0 {
		t.Error("dup_prob=1 on result posts produced no coordinator-side duplicate drops")
	}

	opt, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	opt.Checkpoint = ledger
	gotFig7, err := experiment.Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	gotLAN, err := experiment.LANStudy(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantFig7, gotFig7) || !reflect.DeepEqual(wantLAN, gotLAN) {
		t.Error("results under boundary chaos differ from sequential run")
	}
}

// TestFleetStatusSnapshot checks the fleet health file aggregates the
// workers' engine heartbeats.
func TestFleetStatusSnapshot(t *testing.T) {
	c := integrationCampaign()
	dir := t.TempDir()
	snap, err := RunLocal(context.Background(), LocalOptions{
		Campaign:   c,
		Workers:    2,
		LedgerPath: filepath.Join(dir, "ledger.json"),
		StatusPath: filepath.Join(dir, "fleet-status.json"),
		Log:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Workers) != 2 {
		t.Fatalf("snapshot has %d workers, want 2", len(snap.Workers))
	}
	if snap.Completed == 0 || snap.EventsProcessed == 0 {
		t.Fatalf("aggregated worker heartbeats empty: completed=%d events=%d", snap.Completed, snap.EventsProcessed)
	}
	total := 0
	for _, w := range snap.Workers {
		total += w.Completed
		if w.Health == nil {
			t.Errorf("worker %s has no engine heartbeat in the fleet snapshot", w.Name)
		}
	}
	if total != snap.Settled {
		t.Errorf("per-worker completions sum to %d, want %d settled", total, snap.Settled)
	}
}
