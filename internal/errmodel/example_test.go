package errmodel_test

import (
	"fmt"
	"time"

	"wtcp/internal/errmodel"
	"wtcp/internal/sim"
)

// Example builds the paper's deterministic Figure 3-5 channel and shows
// the alternating schedule and the corruption mean of a fragment
// transmitted inside a fade.
func Example() {
	cfg := errmodel.PaperWAN(4 * time.Second)
	cfg.Deterministic = true
	ch, err := errmodel.NewMarkov(cfg, sim.NewRNG(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("state at 5s: ", ch.StateAt(5*time.Second))
	fmt.Println("state at 12s:", ch.StateAt(12*time.Second))
	// A 128-byte fragment = 1536 on-air bits wholly inside the fade.
	mean := ch.ExpectedBitErrors(11*time.Second, 11*time.Second+80*time.Millisecond, 1536)
	fmt.Printf("expected bit errors in fade: %.2f\n", mean)
	// Output:
	// state at 5s:  good
	// state at 12s: bad
	// expected bit errors in fade: 15.36
}

// ExampleConfig_GoodFraction shows the availability factor behind the
// paper's theoretical maxima.
func ExampleConfig_GoodFraction() {
	cfg := errmodel.PaperWAN(4 * time.Second)
	fmt.Printf("%.4f\n", cfg.GoodFraction())
	// Output:
	// 0.7143
}
