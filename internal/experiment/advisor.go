package experiment

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"wtcp/internal/units"
)

// AdvisorEntry maps one wireless error characteristic to the packet size
// that maximized measured throughput under it.
type AdvisorEntry struct {
	MeanBad        time.Duration
	PacketSize     units.ByteSize
	ThroughputKbps float64
}

// Advisor is the paper's §4.1 deployment proposal made concrete: "a fixed
// table at each base station which maps a particular wireless link error
// characteristic to the 'good' packet size for that error characteristic."
// It is built offline by calibration sweeps and consulted with the
// currently observed mean bad-period length; no per-connection state is
// involved.
type Advisor struct {
	entries []AdvisorEntry // sorted by MeanBad
}

// CalibrateAdvisor runs the Figure 7 sweep (basic TCP) for the options'
// bad periods and packet sizes and records each condition's winner.
func CalibrateAdvisor(ctx context.Context, opt Options) (*Advisor, error) {
	points, err := Fig7(ctx, opt)
	if err != nil {
		return nil, fmt.Errorf("experiment: calibration sweep: %w", err)
	}
	if len(points) == 0 {
		return nil, errors.New("experiment: empty calibration sweep")
	}
	byBad := map[time.Duration]bool{}
	for _, p := range points {
		byBad[p.BadPeriod] = true
	}
	a := &Advisor{}
	for bad := range byBad {
		size, tput := OptimalPacketSize(points, bad)
		a.entries = append(a.entries, AdvisorEntry{
			MeanBad:        bad,
			PacketSize:     size,
			ThroughputKbps: tput,
		})
	}
	sort.Slice(a.entries, func(i, j int) bool { return a.entries[i].MeanBad < a.entries[j].MeanBad })
	return a, nil
}

// NewAdvisor builds an advisor from a precomputed table (e.g. shipped with
// a base station image).
func NewAdvisor(entries []AdvisorEntry) (*Advisor, error) {
	if len(entries) == 0 {
		return nil, errors.New("experiment: advisor needs at least one entry")
	}
	out := make([]AdvisorEntry, len(entries))
	copy(out, entries)
	sort.Slice(out, func(i, j int) bool { return out[i].MeanBad < out[j].MeanBad })
	return &Advisor{entries: out}, nil
}

// Recommend returns the calibrated packet size for the nearest known
// error characteristic.
func (a *Advisor) Recommend(meanBad time.Duration) units.ByteSize {
	best := a.entries[0]
	bestDist := absDur(meanBad - best.MeanBad)
	for _, e := range a.entries[1:] {
		if d := absDur(meanBad - e.MeanBad); d < bestDist {
			best, bestDist = e, d
		}
	}
	return best.PacketSize
}

// Table returns a copy of the calibration entries.
func (a *Advisor) Table() []AdvisorEntry {
	out := make([]AdvisorEntry, len(a.entries))
	copy(out, a.entries)
	return out
}

// String renders the table the way a base station operator would inspect
// it.
func (a *Advisor) String() string {
	var b strings.Builder
	b.WriteString("mean bad period -> good packet size\n")
	for _, e := range a.entries {
		fmt.Fprintf(&b, "  %-8s -> %-6s (%.2f Kbps)\n", e.MeanBad, e.PacketSize, e.ThroughputKbps)
	}
	return b.String()
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
