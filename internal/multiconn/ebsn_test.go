package multiconn

import (
	"testing"
	"time"

	"wtcp/internal/units"
)

// TestEBSNComposesWithScheduling verifies the extension beyond both
// original studies: adding EBSN to the shared-radio scenario reduces
// source timeouts under every scheduling policy, and most dramatically
// under FIFO, whose long head-of-line stalls are exactly the condition
// that fires source timers.
func TestEBSNComposesWithScheduling(t *testing.T) {
	run := func(p Policy, ebsn bool) (timeouts uint64, agg float64) {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := LANDefaults(4, p, time.Second)
			cfg.TransferSize = 256 * units.KB
			cfg.EBSN = ebsn
			cfg.Seed = seed
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Completed {
				t.Fatalf("%v/ebsn=%v seed %d did not complete", p, ebsn, seed)
			}
			timeouts += r.TotalTimeouts
			agg += r.AggregateKbps / 3
			if ebsn && r.EBSNsSent == 0 && r.RadioAttempts > 100 {
				t.Errorf("%v: EBSN enabled but none sent", p)
			}
			if !ebsn && r.EBSNsSent != 0 {
				t.Errorf("%v: EBSN disabled but %d sent", p, r.EBSNsSent)
			}
		}
		return timeouts, agg
	}
	for _, p := range []Policy{FIFO, RoundRobin} {
		plainTO, plainAgg := run(p, false)
		ebsnTO, ebsnAgg := run(p, true)
		if ebsnTO > plainTO {
			t.Errorf("%v: EBSN timeouts %d above plain %d", p, ebsnTO, plainTO)
		}
		if plainTO > 0 && ebsnAgg < plainAgg*0.95 {
			t.Errorf("%v: EBSN aggregate %.0f well below plain %.0f", p, ebsnAgg, plainAgg)
		}
	}
}

func TestEBSNFIFOTimeoutReduction(t *testing.T) {
	// FIFO + fades stall every connection for seconds at a time; EBSN
	// must remove a large share of the resulting timeouts.
	var plain, withEBSN uint64
	for seed := int64(1); seed <= 3; seed++ {
		cfg := LANDefaults(4, FIFO, 1500*time.Millisecond)
		cfg.TransferSize = 256 * units.KB
		cfg.Seed = seed
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain += r.TotalTimeouts
		cfg.EBSN = true
		re, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		withEBSN += re.TotalTimeouts
	}
	if plain == 0 {
		t.Skip("no baseline timeouts with these seeds")
	}
	if withEBSN*2 > plain {
		t.Errorf("EBSN removed too few timeouts: %d -> %d", plain, withEBSN)
	}
}
