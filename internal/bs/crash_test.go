package bs

import (
	"testing"
	"time"

	"wtcp/internal/packet"
)

// TestCrashDropsARQState: crashing a local-recovery station mid-stream
// loses the radio queue and the ARQ window; the loss is reported to the
// caller and counted.
func TestCrashDropsARQState(t *testing.T) {
	b := newBench(t, Config{Scheme: LocalRecovery, MTU: 128, ARQ: ARQConfig{AckTimeout: 100 * time.Millisecond}}, nil)
	b.ackBack = false // no link acks, so ARQ state accumulates
	for i := 0; i < 3; i++ {
		b.bs.FromWired(b.dataPacket(int64(i) * 536))
	}
	// Let a little serialization happen, then crash with state in flight.
	if err := b.s.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	lost := b.bs.Crash()
	if lost == 0 {
		t.Error("crash with in-flight ARQ state reports nothing lost")
	}
	if !b.bs.Down() {
		t.Error("station not down after crash")
	}
	st := b.bs.Stats()
	if st.Crashes != 1 || st.CrashLostPackets != uint64(lost) {
		t.Errorf("stats = crashes %d, lost %d; want 1, %d", st.Crashes, st.CrashLostPackets, lost)
	}
}

// TestCrashIdempotent: a second crash while down is a no-op.
func TestCrashIdempotent(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic}, nil)
	b.bs.Crash()
	if lost := b.bs.Crash(); lost != 0 {
		t.Errorf("second crash reported %d lost packets", lost)
	}
	if b.bs.Stats().Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", b.bs.Stats().Crashes)
	}
}

// TestDownedStationDiscardsBothDirections: while down, traffic from both
// the wired and the wireless side vanishes (and is counted).
func TestDownedStationDiscardsBothDirections(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic}, nil)
	b.bs.Crash()
	b.bs.FromWired(b.dataPacket(0))
	b.bs.FromWireless(&packet.Packet{ID: b.ids.Next(), Kind: packet.Ack, AckNo: 536})
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 0 || len(b.toFH) != 0 {
		t.Errorf("downed station forwarded traffic: mh=%d fh=%d", len(b.mhGot), len(b.toFH))
	}
	if got := b.bs.Stats().CrashDiscards; got != 2 {
		t.Errorf("CrashDiscards = %d, want 2", got)
	}
}

// TestRestartResumesForwarding: a reboot brings the station back with
// empty state; fresh traffic flows again.
func TestRestartResumesForwarding(t *testing.T) {
	b := newBench(t, Config{Scheme: Basic}, nil)
	b.bs.Crash()
	b.bs.Restart()
	if b.bs.Down() {
		t.Fatal("station still down after restart")
	}
	b.bs.FromWired(b.dataPacket(0))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) == 0 {
		t.Error("no delivery after restart")
	}
	// Restarting a live station is a no-op.
	b.bs.Restart()
	if b.bs.Stats().Crashes != 1 {
		t.Error("restart changed the crash count")
	}
}
