package bs

import (
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
)

// arqEngine is the local-recovery link protocol: pipelined per-unit
// stop-and-wait with link-level acknowledgments.
//
// Up to Window link units are outstanding at once (pipelining keeps the
// radio busy, so recovery does not itself sacrifice throughput). Each unit
// gets an acknowledgment timer armed when the unit finishes serializing;
// an expiry is an "unsuccessful attempt": the base station notifies the
// source (EBSN / quench schemes), waits a uniform random backoff, and
// retransmits — up to RTmax retransmissions, after which the whole network
// packet is discarded (all of its units withdrawn), per the CDPD-style
// protocol the paper adopts.
type arqEngine struct {
	bs  *BaseStation
	cfg ARQConfig

	// pendingUnits holds link units not yet transmitted, FIFO across
	// packets.
	pendingUnits []*packet.Packet
	// outstanding maps unit ID -> in-flight attempt state.
	outstanding map[uint64]*arqEntry
	// packetUnits maps network-packet ID -> number of its units still
	// unacknowledged (pending, outstanding, or backing off); when it
	// reaches zero the packet has fully crossed the wireless hop.
	packetUnits map[uint64]int
	// discarded marks packets withdrawn after RTmax; their stray timers
	// and acks are ignored.
	discarded map[uint64]bool
	// nextLinkSeq numbers units so the mobile host can restore
	// in-sequence delivery (retransmission backoffs reorder the air).
	nextLinkSeq int64
	// connUnits counts unacknowledged units per connection, so a failed
	// attempt can notify every source whose data is held up (identical
	// to the single-connection behaviour when only one source exists).
	connUnits map[int]int
	// packetConn remembers each admitted packet's connection for the
	// decrement on completion/discard.
	packetConn map[uint64]int
	// freeEntries recycles attempt-state records (and their pre-bound
	// timers) so the per-unit transmit path allocates nothing once warm.
	freeEntries []*arqEntry
}

// arqEntry tracks one outstanding (or backing-off) unit. Entries are
// pooled: getEntry/putEntry recycle them, and each entry owns a single
// timer, pre-bound at creation, that serves both the acknowledgment
// deadline and the retransmission backoff (backingOff says which phase
// the entry is in when the timer fires).
type arqEntry struct {
	id       uint64 // unit ID currently tracked (guards stale timer fires)
	unit     *packet.Packet
	attempts int // transmissions so far
	timer    *sim.Timer
	// backingOff marks the gap between an unsuccessful attempt and the
	// retransmission; the entry does not count toward the window then.
	backingOff bool
}

func newARQEngine(b *BaseStation, cfg ARQConfig) *arqEngine {
	e := &arqEngine{
		bs:          b,
		cfg:         cfg,
		outstanding: make(map[uint64]*arqEntry),
		packetUnits: make(map[uint64]int),
		discarded:   make(map[uint64]bool),
		connUnits:   make(map[int]int),
		packetConn:  make(map[uint64]int),
	}
	// Arm acknowledgment timers from the instant a unit leaves the
	// transmitter, not when it was queued.
	b.down.SetTxDoneHook(e.onTxDone)
	return e
}

// backlogPackets reports how many network packets are still crossing the
// wireless hop.
func (e *arqEngine) backlogPackets() int { return len(e.packetUnits) }

// getEntry takes an attempt-state record from the pool, or builds one
// with its timer pre-bound to the entry (the closure is allocated once
// per pooled record, not once per transmission).
func (e *arqEngine) getEntry() *arqEntry {
	if n := len(e.freeEntries); n > 0 {
		en := e.freeEntries[n-1]
		e.freeEntries = e.freeEntries[:n-1]
		return en
	}
	en := &arqEntry{}
	en.timer = sim.NewTimer(e.bs.sim, func() { e.timerFired(en) })
	return en
}

// putEntry stops the entry's timer and returns it to the pool. Callers
// must have removed it from outstanding first.
func (e *arqEngine) putEntry(en *arqEntry) {
	en.timer.Stop()
	en.unit = nil
	e.freeEntries = append(e.freeEntries, en)
}

// timerFired dispatches the entry's timer: an expiry during backoff is
// the cue to retransmit, otherwise it is a missed acknowledgment. The
// identity check drops stale fires (the entry was recycled for another
// unit while an old callback was in flight).
func (e *arqEngine) timerFired(en *arqEntry) {
	if e.outstanding[en.id] != en {
		return
	}
	if en.backingOff {
		e.retransmit(en.id)
	} else {
		e.onAckTimeout(en.id)
	}
}

// reset discards all recovery state — a base-station crash. Every pending
// or in-flight unit and its timers are dropped; the link sequence counter
// keeps running so post-restart units never reuse a sequence number the
// mobile host has already seen. It returns the number of network packets
// whose delivery state was lost.
func (e *arqEngine) reset() int {
	lost := len(e.packetUnits)
	for _, en := range e.outstanding {
		e.putEntry(en)
	}
	e.outstanding = make(map[uint64]*arqEntry)
	e.pendingUnits = nil
	e.packetUnits = make(map[uint64]int)
	e.packetConn = make(map[uint64]int)
	e.connUnits = make(map[int]int)
	e.discarded = make(map[uint64]bool)
	return lost
}

// admit accepts a data packet from the wired side, or refuses it when the
// hold queue is full.
func (e *arqEngine) admit(p *packet.Packet) bool {
	if len(e.packetUnits) >= e.bs.cfg.QueueLimit {
		return false
	}
	units := e.bs.units(p)
	e.packetUnits[p.ID] = len(units)
	e.packetConn[p.ID] = p.Conn
	e.connUnits[p.Conn] += len(units)
	for _, u := range units {
		e.nextLinkSeq++
		u.LinkSeq = e.nextLinkSeq
	}
	e.pendingUnits = append(e.pendingUnits, units...)
	e.fill()
	return true
}

// inFlight counts entries holding a window slot. Backing-off entries keep
// their slot: releasing it would let the whole backlog cycle through
// failed attempts during a fade, marching every queued packet toward the
// RTmax discard instead of only the window's head — the FIFO-ish
// behaviour the paper's protocol has.
func (e *arqEngine) inFlight() int { return len(e.outstanding) }

// fill transmits pending units while window slots are free.
func (e *arqEngine) fill() {
	for e.inFlight() < e.cfg.Window && len(e.pendingUnits) > 0 {
		u := e.pendingUnits[0]
		e.pendingUnits[0] = nil
		e.pendingUnits = e.pendingUnits[1:]
		if e.discarded[e.unitPacketID(u)] {
			continue
		}
		e.transmit(u, 1)
	}
}

// unitPacketID returns the network-packet ID a unit belongs to.
func (e *arqEngine) unitPacketID(u *packet.Packet) uint64 {
	if u.Kind == packet.Fragment {
		return u.FragOf
	}
	return u.ID
}

// transmit puts a unit on the air and registers its attempt state.
func (e *arqEngine) transmit(u *packet.Packet, attempt int) {
	en := e.getEntry()
	en.id = u.ID
	en.unit = u
	en.attempts = attempt
	en.backingOff = false
	e.outstanding[u.ID] = en
	e.bs.stats.ARQAttempts++
	if e.bs.hooks.OnARQAttempt != nil {
		e.bs.hooks.OnARQAttempt(u.ID, e.unitPacketID(u), attempt)
	}
	// The ack timer is armed by onTxDone when serialization finishes. If
	// the link refuses the unit outright (full queue), treat that as an
	// immediate unsuccessful attempt.
	if !e.bs.down.Send(u) {
		en.timer.Set(0)
	}
}

// onTxDone fires when the downlink finishes serializing any packet; arm
// the corresponding ack timer.
func (e *arqEngine) onTxDone(p *packet.Packet) {
	if en, ok := e.outstanding[p.ID]; ok && !en.backingOff {
		en.timer.Set(e.cfg.AckTimeout)
	}
}

// onLinkAck handles a link-level acknowledgment for unit id.
func (e *arqEngine) onLinkAck(id uint64) {
	en, ok := e.outstanding[id]
	if !ok {
		return // stale ack (unit already acked or its packet discarded)
	}
	delete(e.outstanding, id)
	pid := e.unitPacketID(en.unit)
	if e.bs.hooks.OnARQAck != nil {
		e.bs.hooks.OnARQAck(id, pid)
	}
	e.putEntry(en)
	if n, ok := e.packetUnits[pid]; ok {
		if n <= 1 {
			delete(e.packetUnits, pid)
		} else {
			e.packetUnits[pid] = n - 1
		}
		e.decrConn(pid, 1)
	}
	e.fill()
}

// decrConn reduces a connection's held-up unit count by n units of the
// given packet.
func (e *arqEngine) decrConn(pid uint64, n int) {
	conn, ok := e.packetConn[pid]
	if !ok {
		return
	}
	e.connUnits[conn] -= n
	if e.connUnits[conn] <= 0 {
		delete(e.connUnits, conn)
	}
	if _, still := e.packetUnits[pid]; !still {
		delete(e.packetConn, pid)
	}
}

// heldUpConns lists the connections with units still crossing the hop.
func (e *arqEngine) heldUpConns() []int {
	out := make([]int, 0, len(e.connUnits))
	for conn := range e.connUnits {
		out = append(out, conn)
	}
	return out
}

// onAckTimeout declares an attempt unsuccessful: notify the source, then
// back off and retransmit or discard the whole packet after RTmax
// retransmissions.
func (e *arqEngine) onAckTimeout(id uint64) {
	en, ok := e.outstanding[id]
	if !ok {
		return
	}
	e.bs.stats.ARQTimeouts++
	if e.bs.hooks.OnARQFailure != nil {
		e.bs.hooks.OnARQFailure(id, e.unitPacketID(en.unit), en.attempts)
	}
	// Notify every source whose data the hop is holding up — with one
	// connection this is exactly the paper's "notify the source"; with
	// several, bystanders queued behind the failure need the timer push
	// just as much.
	e.bs.notifyFailureAll(en.unit.Conn, e.heldUpConns())

	if en.attempts > e.cfg.RTmax { // initial try + RTmax retransmissions
		e.discardPacket(e.unitPacketID(en.unit))
		return
	}
	// Back off, then retransmit. The entry frees its window slot during
	// the backoff so other units keep the radio busy.
	en.backingOff = true
	backoff := time.Duration(e.bs.rng.Float64() * float64(e.cfg.BackoffMax))
	en.timer.Set(backoff)
	e.fill()
}

// retransmit re-sends a unit after its backoff.
func (e *arqEngine) retransmit(id uint64) {
	en, ok := e.outstanding[id]
	if !ok {
		return
	}
	if e.discarded[e.unitPacketID(en.unit)] {
		delete(e.outstanding, id)
		e.putEntry(en)
		return
	}
	en.backingOff = false
	en.attempts++
	e.bs.stats.ARQAttempts++
	if e.bs.hooks.OnARQAttempt != nil {
		e.bs.hooks.OnARQAttempt(id, e.unitPacketID(en.unit), en.attempts)
	}
	if !e.bs.down.Send(en.unit) {
		en.timer.Set(0)
	}
}

// discardPacket withdraws every unit of the given network packet.
func (e *arqEngine) discardPacket(pid uint64) {
	e.bs.stats.ARQDiscards++
	if e.bs.hooks.OnARQDiscard != nil {
		e.bs.hooks.OnARQDiscard(pid)
	}
	e.discarded[pid] = true
	if n, ok := e.packetUnits[pid]; ok {
		conn := e.packetConn[pid]
		delete(e.packetUnits, pid)
		delete(e.packetConn, pid)
		e.connUnits[conn] -= n
		if e.connUnits[conn] <= 0 {
			delete(e.connUnits, conn)
		}
	}
	for id, en := range e.outstanding {
		if e.unitPacketID(en.unit) == pid {
			delete(e.outstanding, id)
			e.putEntry(en)
		}
	}
	// Pending units of the packet are skipped lazily in fill().
	e.fill()
}
