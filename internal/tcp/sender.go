package tcp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// Sender is a bulk-transfer TCP source. Create with NewSender, then call
// Start; deliver inbound packets (ACKs, EBSNs, quenches) via Receive.
type Sender struct {
	sim   *sim.Simulator
	cfg   Config
	ids   *packet.IDGen
	out   func(*packet.Packet)
	hooks Hooks

	// Sequence state (byte offsets into the transfer).
	sndUna int64 // oldest unacknowledged byte
	sndNxt int64 // next byte to send
	sndMax int64 // highest byte ever sent + 1 (retransmit detector)
	avail  int64 // bytes the application has produced (== Total unless streaming)
	// ecnGuard limits ECN window halving to once per flight.
	ecnGuard int64

	// Congestion control, in bytes. cwnd is fractional because congestion
	// avoidance adds MSS*MSS/cwnd per ACK.
	cwnd     float64
	ssthresh float64
	dupacks  int
	// inRecovery marks Reno fast recovery.
	inRecovery bool
	recover    int64 // Reno: snd_max at loss detection

	// RTT measurement: one segment timed at a time (BSD style). Timing is
	// cancelled by retransmission per Karn's algorithm.
	rto        *RTOEstimator
	timing     bool
	timedSeq   int64
	timedAtTik int

	timer *sim.Timer

	// sack tracks selectively acknowledged ranges (Config.SACK).
	sack scoreboard

	started  bool
	done     bool
	finishAt time.Duration

	stats Stats
}

// NewSender wires a sender that emits packets through out (typically the
// wired link's Send). ids must be shared across all packet creators in the
// simulation.
func NewSender(s *sim.Simulator, cfg Config, ids *packet.IDGen, out func(*packet.Packet)) (*Sender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, errors.New("tcp: nil output callback")
	}
	cfg = cfg.withDefaults()
	snd := &Sender{
		sim:      s,
		cfg:      cfg,
		ids:      ids,
		out:      out,
		cwnd:     float64(cfg.InitialCwnd) * float64(cfg.MSS),
		ssthresh: float64(cfg.Window),
		rto:      NewRTOEstimator(cfg.Granularity, cfg.InitialRTO, cfg.MaxRTO),
	}
	if !cfg.Streaming {
		snd.avail = int64(cfg.Total)
	}
	snd.timer = sim.NewTimer(s, snd.onTimeout)
	return snd, nil
}

// SetHooks installs observation callbacks. Must be called before Start.
func (s *Sender) SetHooks(h Hooks) { s.hooks = h }

// Start opens the transfer (sends the first window).
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.trySend()
}

// Done reports whether every payload byte has been acknowledged.
func (s *Sender) Done() bool { return s.done }

// FinishedAt reports the virtual time the last byte was acknowledged
// (meaningful only once Done).
func (s *Sender) FinishedAt() time.Duration { return s.finishAt }

// Stats returns a copy of the counters.
func (s *Sender) Stats() Stats { return s.stats }

// Cwnd reports the congestion window in bytes.
func (s *Sender) Cwnd() units.ByteSize { return units.ByteSize(s.cwnd) }

// Ssthresh reports the slow-start threshold in bytes.
func (s *Sender) Ssthresh() units.ByteSize { return units.ByteSize(s.ssthresh) }

// RTOEstimator exposes the timeout machinery (read-only use).
func (s *Sender) RTOEstimator() *RTOEstimator { return s.rto }

// SndUna reports the oldest unacknowledged byte offset.
func (s *Sender) SndUna() int64 { return s.sndUna }

// SndNxt reports the next byte offset to send.
func (s *Sender) SndNxt() int64 { return s.sndNxt }

// SndMax reports the highest byte offset ever sent plus one.
func (s *Sender) SndMax() int64 { return s.sndMax }

// CheckInvariants verifies the sender's internal consistency: the
// congestion window within its legal bounds and the sequence pointers in
// their required order. It is registered as a periodic simulation check
// when invariant checking is enabled; a violation means a protocol bug,
// not a network condition (no network behaviour, however adversarial,
// may break these).
func (s *Sender) CheckInvariants() error {
	mss := float64(s.cfg.MSS)
	adv := float64(s.cfg.Window)
	switch {
	case math.IsNaN(s.cwnd) || math.IsInf(s.cwnd, 0):
		return fmt.Errorf("cwnd is not finite: %v", s.cwnd)
	case s.cwnd < mss:
		return fmt.Errorf("cwnd %.1f below one segment (%v)", s.cwnd, s.cfg.MSS)
	case s.cwnd > 2*(adv+mss)+float64(DupAckThreshold)*mss:
		// Reno inflation can push cwnd past the advertised window by up to
		// a flight of dupacks; anything beyond twice the window plus that
		// allowance is runaway growth.
		return fmt.Errorf("cwnd %.1f beyond any legal inflation of the %v window", s.cwnd, s.cfg.Window)
	case s.ssthresh < 0:
		return fmt.Errorf("negative ssthresh %.1f", s.ssthresh)
	case s.sndUna < 0 || s.sndUna > s.sndNxt:
		return fmt.Errorf("sequence order violated: snd_una %d > snd_nxt %d", s.sndUna, s.sndNxt)
	case s.sndNxt > s.sndMax:
		return fmt.Errorf("sequence order violated: snd_nxt %d > snd_max %d", s.sndNxt, s.sndMax)
	case s.sndMax > int64(s.cfg.Total):
		return fmt.Errorf("snd_max %d beyond the %d-byte transfer", s.sndMax, s.cfg.Total)
	case s.avail > int64(s.cfg.Total):
		return fmt.Errorf("application made %d bytes available of a %d-byte transfer", s.avail, s.cfg.Total)
	default:
		return nil
	}
}

// window is the usable send window in bytes: min(cwnd, advertised).
func (s *Sender) window() int64 {
	w := int64(s.cwnd)
	if adv := int64(s.cfg.Window); adv < w {
		w = adv
	}
	if w < int64(s.cfg.MSS) {
		w = int64(s.cfg.MSS)
	}
	return w
}

// MakeAvailable grants the sender n more application bytes to transmit
// (streaming mode); it is a no-op once everything is available.
func (s *Sender) MakeAvailable(n units.ByteSize) {
	if n <= 0 {
		return
	}
	s.avail += int64(n)
	if s.avail > int64(s.cfg.Total) {
		s.avail = int64(s.cfg.Total)
	}
	if s.started {
		s.trySend()
	}
}

// Available reports how many application bytes the sender may transmit.
func (s *Sender) Available() units.ByteSize { return units.ByteSize(s.avail) }

// trySend transmits as many segments as the window allows.
func (s *Sender) trySend() {
	if s.done {
		return
	}
	total := int64(s.cfg.Total)
	for s.sndNxt < total {
		limit := s.sndUna + s.window()
		space := limit - s.sndNxt
		remaining := total - s.sndNxt
		produced := s.avail - s.sndNxt
		seglen := int64(s.cfg.MSS)
		if remaining < seglen {
			seglen = remaining
		}
		if produced <= 0 {
			return // nothing new from the application yet
		}
		if produced < seglen {
			// The application wrote less than a full segment; flush what
			// exists (PSH semantics — an interactive write or a page tail
			// must not wait for bytes that may never come).
			seglen = produced
		}
		if space < seglen {
			// Don't send a partial segment just because the window has a
			// sliver of space (silly-window avoidance); wait for an ACK.
			return
		}
		// SACK: a rewound pass skips ranges the receiver already holds.
		if s.cfg.SACK && s.sndNxt < s.sndMax && s.sack.covered(s.sndNxt, s.sndNxt+seglen) {
			s.stats.SACKSkippedSegments++
			s.sndNxt += seglen
			continue
		}
		s.emit(s.sndNxt, units.ByteSize(seglen))
		s.sndNxt += seglen
		if s.sndNxt > s.sndMax {
			s.sndMax = s.sndNxt
		}
	}
}

// emit sends one segment starting at seq.
func (s *Sender) emit(seq int64, payload units.ByteSize) {
	retx := seq < s.sndMax
	p := &packet.Packet{
		ID:         s.ids.Next(),
		Kind:       packet.Data,
		Seq:        seq,
		Payload:    payload,
		Retransmit: retx,
		SentAt:     s.sim.Now(),
	}
	s.stats.SegmentsSent++
	s.stats.BytesSent += p.Size()
	if retx {
		s.stats.RetransSegments++
		s.stats.RetransBytes += p.Size()
	}
	// Time one fresh segment per window (Karn: never a retransmission).
	if !s.timing && !retx {
		s.timing = true
		s.timedSeq = seq
		s.timedAtTik = s.rto.Ticks(s.sim.Now())
	}
	if !s.timer.Pending() {
		s.timer.Set(s.rto.RTO())
	}
	if s.hooks.OnSend != nil {
		s.hooks.OnSend(seq, payload, retx)
	}
	s.emitState(StateSnapshot{Kind: StateSend, Seq: seq, Payload: payload, Retransmit: retx})
	s.out(p)
}

// emitState fills the common fields of a post-transition snapshot and
// hands it to the observation hook. Sequence pointers already advanced by
// the caller are reported as-is; the snapshot must be taken after every
// state mutation of the transition (including timer re-arms).
func (s *Sender) emitState(st StateSnapshot) {
	if s.hooks.OnState == nil {
		return
	}
	st.Cwnd = units.ByteSize(s.cwnd)
	st.Ssthresh = units.ByteSize(s.ssthresh)
	st.SndUna = s.sndUna
	st.SndNxt = s.sndNxt
	st.SndMax = s.sndMax
	st.RTO = s.rto.RTO()
	st.TimerDeadline = s.timer.Deadline()
	st.BackoffShift = s.rto.BackoffShift()
	st.DupAcks = s.dupacks
	s.hooks.OnState(st)
}

// emitAckState snapshots the outcome of processing one cumulative ACK.
func (s *Sender) emitAckState(ackNo int64, class AckClass) {
	s.emitState(StateSnapshot{Kind: StateAck, AckNo: ackNo, AckClass: class})
}

// Receive accepts an inbound packet from the network: TCP ACKs and the two
// control messages. Other kinds are ignored.
func (s *Sender) Receive(p *packet.Packet) {
	switch p.Kind {
	case packet.Ack:
		if p.CongestionMarked {
			s.onECNEcho()
		}
		if s.cfg.SACK && len(p.SACK) > 0 {
			s.sack.record(p.SACK)
		}
		s.onAck(p.AckNo)
	case packet.EBSN:
		s.onEBSN()
	case packet.SourceQuench:
		s.onQuench()
	}
}

// onECNEcho is the [Floyd 94] ECN response: halve the window as a
// congestion signal, at most once per window of data (repeated echoes
// within one flight describe the same congestion event).
func (s *Sender) onECNEcho() {
	if s.done || s.sndUna < s.ecnGuard {
		return
	}
	s.stats.ECNResponses++
	s.halveSsthresh()
	s.cwnd = s.ssthresh
	s.notifyCwnd()
	s.ecnGuard = s.sndNxt
	s.emitState(StateSnapshot{Kind: StateECN})
}

// onAck processes a cumulative acknowledgment.
func (s *Sender) onAck(ackNo int64) {
	if s.done {
		return
	}
	if ackNo > s.sndMax {
		// Acknowledgment for data never sent (corrupted or forged);
		// accepting it would desynchronize the window. RFC 793 drops it.
		s.emitAckState(ackNo, AckInvalid)
		return
	}
	s.stats.AcksReceived++
	switch {
	case ackNo > s.sndUna:
		s.onNewAck(ackNo)
	case ackNo == s.sndUna && s.sndNxt > s.sndUna:
		s.onDupAck()
	default:
		// Old ACK (below snd_una): ignore.
		s.emitAckState(ackNo, AckOld)
	}
}

func (s *Sender) onNewAck(ackNo int64) {
	// RTT sample if the timed segment is covered and was never
	// retransmitted (timing is cancelled on retransmission).
	if s.timing && ackNo > s.timedSeq {
		s.rto.Sample(s.rto.Ticks(s.sim.Now()) - s.timedAtTik)
		s.timing = false
	}

	if s.inRecovery { // Reno / NewReno
		switch {
		case ackNo >= s.recover:
			// Full recovery: deflate to ssthresh and exit.
			s.cwnd = s.ssthresh
			s.inRecovery = false
			s.notifyCwnd()
		case s.cfg.Variant.PartialAckRetransmit():
			// Partial ACK: the next segment after ackNo is also missing;
			// retransmit it immediately and stay in recovery, deflating
			// by the amount acknowledged.
			s.cwnd -= float64(ackNo - s.sndUna)
			if s.cwnd < float64(s.cfg.MSS) {
				s.cwnd = float64(s.cfg.MSS)
			}
			s.notifyCwnd()
			s.dupacks = 0
			s.sndUna = ackNo
			if s.sndNxt < s.sndUna {
				s.sndNxt = s.sndUna
			}
			s.retransmitFirst()
			s.emitAckState(ackNo, AckNew)
			s.trySend()
			return
		default:
			// Plain Reno exits recovery on any new ACK.
			s.cwnd = s.ssthresh
			s.inRecovery = false
			s.notifyCwnd()
		}
	} else {
		s.growCwnd()
	}

	s.dupacks = 0
	s.sndUna = ackNo
	if s.sndNxt < s.sndUna {
		s.sndNxt = s.sndUna
	}
	if s.cfg.SACK {
		s.sack.advance(s.sndUna)
	}

	if s.sndUna >= int64(s.cfg.Total) {
		s.complete()
		s.emitAckState(ackNo, AckNew)
		return
	}
	// Restart the timer for the remaining outstanding data; with nothing
	// in flight the timer must stop (an idle connection has nothing to
	// retransmit — a spurious expiry would collapse the window).
	if s.sndNxt > s.sndUna {
		s.timer.Set(s.rto.RTO())
	} else {
		s.timer.Stop()
	}
	s.emitAckState(ackNo, AckNew)
	s.trySend()
}

// growCwnd applies slow start or congestion avoidance for one new ACK.
func (s *Sender) growCwnd() {
	mss := float64(s.cfg.MSS)
	if s.cwnd < s.ssthresh {
		s.cwnd += mss
	} else {
		s.cwnd += mss * mss / s.cwnd
	}
	// cwnd is not allowed to grow beyond what the advertised window can
	// use, plus one segment of headroom (keeps the float bounded).
	if cap := float64(s.cfg.Window) + mss; s.cwnd > cap {
		s.cwnd = cap
	}
	s.notifyCwnd()
}

// notifyCwnd reports window changes to the observation hook.
func (s *Sender) notifyCwnd() {
	if s.hooks.OnCwnd != nil {
		s.hooks.OnCwnd(units.ByteSize(s.cwnd), units.ByteSize(s.ssthresh))
	}
}

func (s *Sender) onDupAck() {
	s.stats.DupAcksReceived++
	s.dupacks++
	if s.inRecovery {
		// Reno: inflate the window during recovery.
		s.cwnd += float64(s.cfg.MSS)
		s.emitAckState(s.sndUna, AckDup)
		s.trySend()
		return
	}
	if s.dupacks != DupAckThreshold {
		s.emitAckState(s.sndUna, AckDup)
		return
	}
	s.stats.FastRetransmits++
	if s.hooks.OnFastRetransmit != nil {
		s.hooks.OnFastRetransmit(s.sndUna)
	}
	s.halveSsthresh()
	s.timing = false // Karn: the loss invalidates the in-flight sample
	mss := float64(s.cfg.MSS)
	switch {
	case s.cfg.Variant.FastRecovery():
		s.inRecovery = true
		s.recover = s.sndMax
		s.retransmitFirst()
		s.cwnd = s.ssthresh + DupAckThreshold*mss
		s.notifyCwnd()
		s.emitState(StateSnapshot{Kind: StateFastRetx, Seq: s.sndUna})
	default: // Tahoe: collapse and slow-start from snd_una (go-back-N).
		s.cwnd = mss
		s.notifyCwnd()
		s.sndNxt = s.sndUna
		s.dupacks = 0
		s.timer.Set(s.rto.RTO())
		s.emitState(StateSnapshot{Kind: StateFastRetx, Seq: s.sndUna})
		s.trySend()
	}
}

// halveSsthresh sets ssthresh to half the effective window, floored at two
// segments, as in [Jacobson 88].
func (s *Sender) halveSsthresh() {
	flight := s.cwnd
	if adv := float64(s.cfg.Window); adv < flight {
		flight = adv
	}
	half := flight / 2
	if min := 2 * float64(s.cfg.MSS); half < min {
		half = min
	}
	s.ssthresh = half
}

// retransmitFirst re-sends the segment at snd_una, extending snd_nxt over
// it if a rewind had left the hole uncovered.
func (s *Sender) retransmitFirst() {
	total := int64(s.cfg.Total)
	seglen := int64(s.cfg.MSS)
	if remaining := total - s.sndUna; remaining < seglen {
		seglen = remaining
	}
	if seglen <= 0 {
		return
	}
	s.emit(s.sndUna, units.ByteSize(seglen))
	// The retransmitted hole is outstanding data: snd_nxt must cover it,
	// or the connection looks idle (timer armed with snd_nxt == snd_una)
	// and a lost retransmission would never be retried. Reachable when a
	// partial ACK jumps past a timeout-rewound snd_nxt via data the
	// receiver buffered before the loss.
	if s.sndNxt < s.sndUna+seglen {
		s.sndNxt = s.sndUna + seglen
	}
	s.timer.Set(s.rto.RTO())
}

// onTimeout is the retransmission-timer expiry: Tahoe congestion response
// plus Karn backoff.
func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	if s.sndNxt <= s.sndUna {
		// Nothing outstanding (idle interactive connection): there is
		// nothing to retransmit and no congestion evidence; a stale
		// timer expiry must not collapse the window.
		return
	}
	s.stats.Timeouts++
	if s.hooks.OnTimeout != nil {
		s.hooks.OnTimeout(s.sndUna)
	}
	s.halveSsthresh()
	s.cwnd = float64(s.cfg.MSS)
	s.notifyCwnd()
	s.rto.Backoff()
	s.timing = false
	s.dupacks = 0
	s.inRecovery = false
	// Go-back-N: rewind and retransmit from the oldest unacked byte.
	s.sndNxt = s.sndUna
	s.timer.Set(s.rto.RTO())
	s.emitState(StateSnapshot{Kind: StateTimeout, Seq: s.sndUna})
	s.trySend()
}

// onEBSN implements the paper's response: replace any pending timer with a
// fresh one holding the *current* timeout value. RTT estimates, backoff,
// and the congestion window are untouched.
func (s *Sender) onEBSN() {
	if s.done {
		return
	}
	s.stats.EBSNResets++
	if s.hooks.OnEBSN != nil {
		s.hooks.OnEBSN()
	}
	if s.sndNxt > s.sndUna { // only while data is outstanding
		s.timer.Set(s.rto.RTO())
	}
	s.emitState(StateSnapshot{Kind: StateEBSN})
}

// onQuench implements RFC 1122 source-quench handling: collapse the
// congestion window to one segment (slow start resumes); the timer and
// estimators are untouched — which is exactly why quench fails to prevent
// the timeouts EBSN prevents.
func (s *Sender) onQuench() {
	if s.done {
		return
	}
	s.stats.Quenches++
	s.cwnd = float64(s.cfg.MSS)
	s.notifyCwnd()
	s.emitState(StateSnapshot{Kind: StateQuench})
}

// complete marks the transfer finished.
func (s *Sender) complete() {
	s.done = true
	s.finishAt = s.sim.Now()
	s.timer.Stop()
	if s.hooks.OnComplete != nil {
		s.hooks.OnComplete(s.finishAt)
	}
}
