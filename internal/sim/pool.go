package sim

import "sync"

// This file gives replication sweeps a pooled setup path: a finished
// simulator can be Reset (keeping its heap slab and event free list warm)
// and reused for the next replication instead of handing the whole event
// arena back to the garbage collector. The process-wide Acquire/Release
// pool is safe for concurrent use — each worker in an experiment sweep
// gets its own simulator; the kernel itself stays single-threaded.

var simPool = sync.Pool{New: func() any { return New() }}

// Acquire returns a ready-to-use simulator from the process-wide pool.
// The simulator is indistinguishable from New()'s — clock at zero, no
// events, no checks — except that its internal event storage may already
// be warm, which never affects simulation results.
func Acquire() *Simulator {
	return simPool.Get().(*Simulator)
}

// Release resets s and returns it to the process-wide pool. The caller
// must not touch s (or any Timer/Event bound to it) afterwards. Never
// release a simulator whose run panicked — its state is unknown; drop it
// and let the garbage collector take it.
func Release(s *Simulator) {
	s.Reset()
	simPool.Put(s)
}

// Reset returns the simulator to its initial state — clock at zero, empty
// queue, no checks, no failure, no bound context — while keeping the heap
// slab and recycled-event free list, so the next run starts with a warm
// allocator. A reset simulator behaves bit-identically to a fresh one:
// sequence numbers restart at zero and no retained storage influences
// event order.
func (s *Simulator) Reset() {
	for _, e := range s.queue.a {
		s.recycle(e)
	}
	clear(s.queue.a)
	s.queue.a = s.queue.a[:0]
	s.dead = 0
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.stopped = false
	s.checks = nil
	s.checksOn = false
	s.failure = nil
	s.ctx = nil
	s.budget = nil
}
