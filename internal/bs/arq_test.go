package bs

import (
	"testing"
	"time"

	"wtcp/internal/packet"
)

func TestARQLinkSeqMonotonicAcrossPackets(t *testing.T) {
	b := newBench(t, Config{Scheme: LocalRecovery, MTU: 128}, nil)
	b.bs.FromWired(b.dataPacket(0))
	b.bs.FromWired(b.dataPacket(576))
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != 10 {
		t.Fatalf("delivered %d units, want 10", len(b.mhGot))
	}
	seen := map[int64]bool{}
	var max int64
	for _, u := range b.mhGot {
		if u.LinkSeq <= 0 {
			t.Fatalf("unit without link sequence: %+v", u)
		}
		if seen[u.LinkSeq] {
			t.Fatalf("duplicate link sequence %d", u.LinkSeq)
		}
		seen[u.LinkSeq] = true
		if u.LinkSeq > max {
			max = u.LinkSeq
		}
	}
	if max != 10 {
		t.Errorf("max link seq = %d, want 10", max)
	}
}

func TestARQLateLinkAckAfterDiscardIgnored(t *testing.T) {
	ch := scriptChannel{bad: func(time.Duration) bool { return true }}
	cfg := Config{Scheme: LocalRecovery, MTU: 600, ARQ: ARQConfig{RTmax: 2, Window: 1}}
	b := newBench(t, cfg, ch)
	p := &packet.Packet{ID: b.ids.Next(), Kind: packet.Data, Seq: 0, Payload: 100}
	b.bs.FromWired(p)
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if b.bs.Stats().ARQDiscards != 1 {
		t.Fatalf("discards = %d", b.bs.Stats().ARQDiscards)
	}
	// A straggler link ack for the discarded unit must be harmless.
	b.bs.FromWireless(&packet.Packet{Kind: packet.LinkAck, AckNo: int64(p.ID + 1)})
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if b.bs.Backlog() != 0 {
		t.Error("late ack resurrected discarded state")
	}
}

func TestARQNewPacketAfterDiscardStillFlows(t *testing.T) {
	// The channel heals after the first packet has been discarded; a
	// subsequent packet must traverse cleanly (no poisoned state).
	healAt := 5 * time.Second
	ch := scriptChannel{bad: func(ts time.Duration) bool { return ts < healAt }}
	cfg := Config{Scheme: LocalRecovery, MTU: 600, ARQ: ARQConfig{RTmax: 2, Window: 1, BackoffMax: 100 * time.Millisecond}}
	b := newBench(t, cfg, ch)
	b.bs.FromWired(&packet.Packet{ID: b.ids.Next(), Kind: packet.Data, Seq: 0, Payload: 100})
	if err := b.s.Run(healAt); err != nil {
		t.Fatal(err)
	}
	if b.bs.Stats().ARQDiscards != 1 {
		t.Fatalf("first packet not discarded: %+v", b.bs.Stats())
	}
	before := len(b.mhGot)
	b.bs.FromWired(&packet.Packet{ID: b.ids.Next(), Kind: packet.Data, Seq: 576, Payload: 100})
	if err := b.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.mhGot) != before+1 {
		t.Errorf("second packet not delivered after discard: %d -> %d", before, len(b.mhGot))
	}
	if b.bs.Backlog() != 0 {
		t.Errorf("backlog = %d", b.bs.Backlog())
	}
}

func TestNotifyEveryThinsEBSNs(t *testing.T) {
	ch := scriptChannel{bad: func(ts time.Duration) bool { return ts < 3*time.Second }}
	dense := newBench(t, Config{Scheme: EBSN, MTU: 128}, ch)
	dense.bs.FromWired(dense.dataPacket(0))
	if err := dense.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	ch2 := scriptChannel{bad: func(ts time.Duration) bool { return ts < 3*time.Second }}
	sparse := newBench(t, Config{Scheme: EBSN, MTU: 128, NotifyEvery: 3}, ch2)
	sparse.bs.FromWired(sparse.dataPacket(0))
	if err := sparse.s.RunAll(); err != nil {
		t.Fatal(err)
	}
	d, s := dense.bs.Stats(), sparse.bs.Stats()
	if d.EBSNsSent == 0 {
		t.Fatal("no EBSNs in the dense run")
	}
	// Thinning to every 3rd failure sends roughly a third as many.
	if s.EBSNsSent*2 >= d.EBSNsSent {
		t.Errorf("thinned EBSNs = %d vs dense %d (timeouts %d/%d)",
			s.EBSNsSent, d.EBSNsSent, s.ARQTimeouts, d.ARQTimeouts)
	}
}
