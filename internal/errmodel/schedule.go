package errmodel

import (
	"errors"
	"time"
)

// Phase is one scripted interval of a Schedule channel.
type Phase struct {
	State    State
	Duration time.Duration
}

// Schedule is a channel whose state follows an explicit script of phases,
// optionally repeating. It generalizes the deterministic variant used for
// Figures 3-5: experiments can replay arbitrary fade patterns (e.g.
// captured from a real link) bit-for-bit across schemes.
type Schedule struct {
	phases []Phase
	// cycle is the script's total length (repeat period).
	cycle time.Duration
	// repeat extends the script periodically; otherwise the final
	// phase's state holds forever.
	repeat bool
	// ber per state.
	goodBER, badBER float64
}

var _ Channel = (*Schedule)(nil)

// NewSchedule builds a scripted channel with the given per-state BERs.
func NewSchedule(phases []Phase, repeat bool, goodBER, badBER float64) (*Schedule, error) {
	if len(phases) == 0 {
		return nil, errors.New("errmodel: empty schedule")
	}
	var cycle time.Duration
	for i, ph := range phases {
		if ph.Duration <= 0 {
			return nil, errors.New("errmodel: non-positive phase duration")
		}
		if ph.State != Good && ph.State != Bad {
			return nil, errors.New("errmodel: unknown phase state")
		}
		_ = i
		cycle += ph.Duration
	}
	if goodBER < 0 || badBER < 0 || goodBER > 1 || badBER > 1 {
		return nil, errors.New("errmodel: BER outside [0,1]")
	}
	out := make([]Phase, len(phases))
	copy(out, phases)
	return &Schedule{
		phases:  out,
		cycle:   cycle,
		repeat:  repeat,
		goodBER: goodBER,
		badBER:  badBER,
	}, nil
}

// phaseAt locates the phase covering t and its remaining span.
func (sc *Schedule) phaseAt(t time.Duration) (Phase, time.Duration) {
	if t < 0 {
		t = 0
	}
	if t >= sc.cycle {
		if !sc.repeat {
			last := sc.phases[len(sc.phases)-1]
			return last, 1<<62 - 1
		}
		t %= sc.cycle
	}
	for _, ph := range sc.phases {
		if t < ph.Duration {
			return ph, ph.Duration - t
		}
		t -= ph.Duration
	}
	// Unreachable: t < cycle and phases sum to cycle.
	return sc.phases[len(sc.phases)-1], 0
}

// StateAt implements Channel.
func (sc *Schedule) StateAt(t time.Duration) State {
	ph, _ := sc.phaseAt(t)
	return ph.State
}

// ber maps a state to its bit error rate.
func (sc *Schedule) ber(s State) float64 {
	if s == Bad {
		return sc.badBER
	}
	return sc.goodBER
}

// ExpectedBitErrors implements Channel by integrating the scripted BER
// across [start, end).
func (sc *Schedule) ExpectedBitErrors(start, end time.Duration, bits int64) float64 {
	if bits <= 0 {
		return 0
	}
	if end <= start {
		return sc.ber(sc.StateAt(start)) * float64(bits)
	}
	if start < 0 {
		start = 0
	}
	total := float64(end - start)
	mean := 0.0
	t := start
	for t < end {
		ph, remaining := sc.phaseAt(t)
		span := remaining
		if t+span > end {
			span = end - t
		}
		mean += sc.ber(ph.State) * float64(bits) * float64(span) / total
		t += span
	}
	return mean
}
