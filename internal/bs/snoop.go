package bs

import (
	"sort"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

// snoopAgent is a simplified transport-aware snoop module [Balakrishnan
// 95], implemented as a related-work baseline. It caches data segments
// crossing toward the mobile host and performs local retransmissions when
// it sees duplicate TCP acknowledgments (suppressing them toward the
// source) or when a local persistence timer expires. Unlike the paper's
// schemes it must keep per-connection transport state at the base station
// — the operational cost the paper's proposals avoid.
//
// Simplifications versus the full snoop protocol (documented in
// DESIGN.md): a single connection, no wireless-RTT estimator (a fixed
// local timeout), and at most one local retransmission per dupack burst.
type snoopAgent struct {
	bs  *BaseStation
	cfg SnoopConfig

	// cache maps segment start seq -> the cached segment.
	cache map[int64]*cachedSeg
	// lastAck is the highest cumulative ack seen from the mobile host.
	lastAck int64
	// dupacks counts consecutive duplicates of lastAck.
	dupacks int
	// timer is the persistence timer for the oldest cached segment.
	timer *sim.Timer
}

type cachedSeg struct {
	seq     int64
	payload units.ByteSize
	pkt     *packet.Packet
	// locallyRetransmitted marks segments the agent has already re-sent
	// since the last ack advance, limiting dupack-triggered re-sends.
	locallyRetransmitted bool
	// retx counts local retransmissions of this cached copy; at
	// SnoopConfig.MaxLocalRetx the copy is evicted. A replacement copy
	// from the source restarts the count.
	retx int
}

func newSnoopAgent(b *BaseStation, cfg SnoopConfig) *snoopAgent {
	a := &snoopAgent{
		bs:    b,
		cfg:   cfg,
		cache: make(map[int64]*cachedSeg),
	}
	a.timer = sim.NewTimer(b.sim, a.onLocalTimeout)
	return a
}

// reset discards the cache and dup-ack state — a base-station crash. It
// returns the number of cached segments lost. lastAck survives in spirit
// only: a rebooted agent restarts from zero and re-learns it from the
// next ack it sees, which is safe because filterAck treats a lower
// cumulative ack as a new one and simply re-seeds.
func (a *snoopAgent) reset() int {
	lost := len(a.cache)
	a.cache = make(map[int64]*cachedSeg)
	a.lastAck = 0
	a.dupacks = 0
	a.timer.Stop()
	return lost
}

// admit caches a data segment and forwards it onto the wireless link.
func (a *snoopAgent) admit(p *packet.Packet) {
	if _, replacing := a.cache[p.Seq]; replacing || len(a.cache) < a.cfg.MaxCached {
		// A retransmission from the source replaces the cached copy,
		// clearing the local-retransmit mark and the attempt count.
		a.cache[p.Seq] = &cachedSeg{seq: p.Seq, payload: p.Payload, pkt: p}
		if a.bs.hooks.OnSnoopAdmit != nil {
			a.bs.hooks.OnSnoopAdmit(p.Seq)
		}
	}
	a.bs.forwardBasic(p)
	if !a.timer.Pending() {
		a.timer.Set(a.cfg.LocalTimeout)
	}
}

// filterAck inspects a TCP ack from the mobile host. It returns true when
// the ack should be suppressed (a dupack the agent is handling locally).
func (a *snoopAgent) filterAck(p *packet.Packet) bool {
	switch {
	case p.AckNo > a.lastAck:
		// New ack: free the cache below it, reset dup state, re-arm the
		// persistence timer.
		a.lastAck = p.AckNo
		a.dupacks = 0
		for seq := range a.cache {
			if seq < p.AckNo {
				delete(a.cache, seq)
			}
		}
		if len(a.cache) == 0 {
			a.timer.Stop()
		} else {
			a.timer.Set(a.cfg.LocalTimeout)
		}
		return false
	case p.AckNo == a.lastAck:
		a.dupacks++
		seg, ok := a.cache[p.AckNo]
		if !ok {
			// We never saw the missing segment (or evicted it at the
			// retransmission cap); the source must handle it. Forward the
			// dupack so a genuine loss is never hidden from the sender.
			return false
		}
		if !seg.locallyRetransmitted {
			seg.locallyRetransmitted = true
			if !a.localRetransmit(seg) {
				// Evicted at the cap: local repair has given up, so the
				// dupack must reach the source.
				return false
			}
		}
		// Suppress the dupack: the loss is being repaired locally.
		a.bs.stats.SnoopSuppressedDupAcks++
		if a.bs.hooks.OnSnoopSuppress != nil {
			a.bs.hooks.OnSnoopSuppress(p.AckNo)
		}
		return true
	default:
		// Ack below lastAck: stale; forward (harmless).
		return false
	}
}

// onLocalTimeout retransmits the oldest cached segment.
func (a *snoopAgent) onLocalTimeout() {
	if len(a.cache) == 0 {
		return
	}
	seqs := make([]int64, 0, len(a.cache))
	for seq := range a.cache {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	a.localRetransmit(a.cache[seqs[0]])
	if len(a.cache) > 0 {
		a.timer.Set(a.cfg.LocalTimeout)
	} else {
		a.timer.Stop()
	}
}

// localRetransmit re-sends a cached segment over the wireless hop. It
// reports false when the segment has exhausted its attempt cap and was
// evicted instead of retransmitted.
func (a *snoopAgent) localRetransmit(seg *cachedSeg) bool {
	if seg.retx >= a.cfg.MaxLocalRetx {
		a.evict(seg)
		return false
	}
	seg.retx++
	a.bs.stats.SnoopLocalRetx++
	if a.bs.hooks.OnSnoopRetx != nil {
		a.bs.hooks.OnSnoopRetx(seg.seq, seg.retx)
	}
	copy := &packet.Packet{
		ID:         a.bs.ids.Next(),
		Kind:       packet.Data,
		Seq:        seg.seq,
		Payload:    seg.payload,
		Retransmit: true,
		SentAt:     a.bs.sim.Now(),
	}
	a.bs.forwardBasic(copy)
	return true
}

// evict drops a cached copy that has used up its retransmission cap; the
// fixed host's own recovery (fast retransmit or RTO) repairs the loss.
func (a *snoopAgent) evict(seg *cachedSeg) {
	delete(a.cache, seg.seq)
	a.bs.stats.SnoopEvictions++
	if a.bs.hooks.OnSnoopEvict != nil {
		a.bs.hooks.OnSnoopEvict(seg.seq)
	}
	if len(a.cache) == 0 {
		a.timer.Stop()
	}
}
