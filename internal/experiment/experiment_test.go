package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/trace"
	"wtcp/internal/units"
)

// quickOpts keeps test sweeps fast: fewer points, smaller transfers,
// fewer replications. The qualitative claims still hold at this scale.
// The conformance oracle rides along on every test sweep so any protocol
// regression surfaces here too.
func quickOpts() Options {
	return Options{
		Replications: 3,
		Transfer:     40 * units.KB,
		PacketSizes:  []units.ByteSize{128, 512, 1536},
		BadPeriods:   []time.Duration{time.Second, 4 * time.Second},
		Oracle:       true,
	}
}

func TestFig7ShapeBasicTCP(t *testing.T) {
	points, err := Fig7(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 2 bads x 3 sizes", len(points))
	}
	// Claim 1: for a fixed size, shorter bad periods give higher
	// throughput.
	for _, size := range []units.ByteSize{512, 1536} {
		p1, ok1 := pointAt(points, time.Second, size)
		p4, ok4 := pointAt(points, 4*time.Second, size)
		if !ok1 || !ok4 {
			t.Fatal("missing points")
		}
		if p1.ThroughputKbps.Mean() <= p4.ThroughputKbps.Mean() {
			t.Errorf("size %d: tput(bad=1s)=%.2f not above tput(bad=4s)=%.2f",
				size, p1.ThroughputKbps.Mean(), p4.ThroughputKbps.Mean())
		}
	}
	// Claim 2: basic TCP does not beat the theoretical max. tput_th is a
	// long-run expectation while these quick 40 KB transfers start in a
	// good state, so a short run can realize a slightly luckier channel;
	// allow 10% for that bias (the full-scale harness shows the clear
	// gap the paper stresses).
	for _, p := range points {
		if m := p.ThroughputKbps.Mean(); m > p.TheoreticalMaxKbps*1.10 {
			t.Errorf("basic TCP %v/%v throughput %.2f far above tput_th %.2f",
				p.BadPeriod, p.PacketSize, m, p.TheoreticalMaxKbps)
		}
	}
	// Claim 3: at bad=1s the mid packet size beats the largest (the
	// optimal-size effect: 512 beat 1536 by ~30% in the paper).
	p512, _ := pointAt(points, time.Second, 512)
	p1536, _ := pointAt(points, time.Second, 1536)
	if p512.ThroughputKbps.Mean() <= p1536.ThroughputKbps.Mean() {
		t.Errorf("optimal-size effect missing: 512B=%.2f <= 1536B=%.2f",
			p512.ThroughputKbps.Mean(), p1536.ThroughputKbps.Mean())
	}
}

func TestFig8EBSNBeatsBasicAndLikesBigPackets(t *testing.T) {
	opt := quickOpts()
	basic, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ebsn, err := Fig8(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// EBSN >= basic pointwise (averaged samples; allow tiny slack).
	for i := range ebsn {
		b, e := basic[i], ebsn[i]
		if e.ThroughputKbps.Mean() < b.ThroughputKbps.Mean()*0.97 {
			t.Errorf("EBSN below basic at %v/%v: %.2f vs %.2f",
				e.BadPeriod, e.PacketSize, e.ThroughputKbps.Mean(), b.ThroughputKbps.Mean())
		}
	}
	// The paper's Figure 8 observation: with EBSN, larger packets do
	// better (no fragmentation penalty) — 1536 should beat 128.
	small, _ := pointAt(ebsn, 4*time.Second, 128)
	big, _ := pointAt(ebsn, 4*time.Second, 1536)
	if big.ThroughputKbps.Mean() <= small.ThroughputKbps.Mean() {
		t.Errorf("EBSN: 1536B=%.2f not above 128B=%.2f",
			big.ThroughputKbps.Mean(), small.ThroughputKbps.Mean())
	}
	// And EBSN approaches tput_th for large packets (within ~15%).
	if big.ThroughputKbps.Mean() < 0.8*big.TheoreticalMaxKbps {
		t.Errorf("EBSN large-packet throughput %.2f far from tput_th %.2f",
			big.ThroughputKbps.Mean(), big.TheoreticalMaxKbps)
	}
}

func TestFig9RetransmissionsShape(t *testing.T) {
	opt := quickOpts()
	points, err := Fig9(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("points = %d, want 2 schemes x 2 bads x 3 sizes", len(points))
	}
	find := func(s bs.Scheme, bad time.Duration, size units.ByteSize) RetransPoint {
		for _, p := range points {
			if p.Scheme == s && p.BadPeriod == bad && p.PacketSize == size {
				return p
			}
		}
		t.Fatal("point missing")
		return RetransPoint{}
	}
	// Basic TCP retransmits grow with bad-period length (at a fixed
	// size), and EBSN retransmits are far below basic.
	b1 := find(bs.Basic, time.Second, 512)
	b4 := find(bs.Basic, 4*time.Second, 512)
	if b4.RetransKB.Mean() <= b1.RetransKB.Mean() {
		t.Errorf("basic retrans not growing with bad period: %.1f vs %.1f",
			b1.RetransKB.Mean(), b4.RetransKB.Mean())
	}
	for _, bad := range []time.Duration{time.Second, 4 * time.Second} {
		for _, size := range []units.ByteSize{128, 512, 1536} {
			eb := find(bs.EBSN, bad, size)
			ba := find(bs.Basic, bad, size)
			if eb.RetransKB.Mean() > ba.RetransKB.Mean()*0.5+1 {
				t.Errorf("EBSN retrans %.1fKB not well below basic %.1fKB at %v/%v",
					eb.RetransKB.Mean(), ba.RetransKB.Mean(), bad, size)
			}
		}
	}
}

func TestLANStudyShape(t *testing.T) {
	opt := Options{
		Replications: 3,
		Transfer:     units.MB,
		BadPeriods:   []time.Duration{400 * time.Millisecond, 1600 * time.Millisecond},
	}
	points, err := LANStudy(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 2 schemes x 2 bads", len(points))
	}
	find := func(s bs.Scheme, bad time.Duration) LANPoint {
		for _, p := range points {
			if p.Scheme == s && p.BadPeriod == bad {
				return p
			}
		}
		t.Fatal("point missing")
		return LANPoint{}
	}
	for _, bad := range []time.Duration{400 * time.Millisecond, 1600 * time.Millisecond} {
		basic := find(bs.Basic, bad)
		ebsn := find(bs.EBSN, bad)
		if ebsn.ThroughputMbps.Mean() <= basic.ThroughputMbps.Mean() {
			t.Errorf("bad=%v: EBSN %.3f not above basic %.3f Mbps",
				bad, ebsn.ThroughputMbps.Mean(), basic.ThroughputMbps.Mean())
		}
		if ebsn.RetransKB.Mean() >= basic.RetransKB.Mean() {
			t.Errorf("bad=%v: EBSN retrans %.1f not below basic %.1f",
				bad, ebsn.RetransKB.Mean(), basic.RetransKB.Mean())
		}
		if ebsn.TimeoutsAvg > basic.TimeoutsAvg {
			t.Errorf("bad=%v: EBSN timeouts %.1f above basic %.1f",
				bad, ebsn.TimeoutsAvg, basic.TimeoutsAvg)
		}
	}
}

func TestTraceFiguresQualitative(t *testing.T) {
	horizon := 60 * time.Second
	basic, err := TraceFigure(bs.Basic, horizon)
	if err != nil {
		t.Fatal(err)
	}
	local, err := TraceFigure(bs.LocalRecovery, horizon)
	if err != nil {
		t.Fatal(err)
	}
	ebsn, err := TraceFigure(bs.EBSN, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3: basic TCP suffers source timeouts and retransmissions in
	// the deterministic bad periods.
	if basic.Trace.Count(trace.Timeout) == 0 {
		t.Error("Fig3: basic TCP shows no timeouts")
	}
	if basic.Trace.Count(trace.Retransmit) == 0 {
		t.Error("Fig3: basic TCP shows no retransmissions")
	}
	// Figure 4: local recovery has far fewer source retransmissions than
	// basic, but may still time out.
	if lr, ba := local.Trace.Count(trace.Retransmit), basic.Trace.Count(trace.Retransmit); lr >= ba {
		t.Errorf("Fig4: local recovery retransmissions %d not below basic %d", lr, ba)
	}
	// Figure 5: EBSN eliminates source timeouts entirely within the
	// observed window.
	if n := ebsn.Trace.Count(trace.Timeout); n != 0 {
		t.Errorf("Fig5: EBSN shows %d timeouts, want 0", n)
	}
	if ebsn.Trace.Count(trace.EBSNReset) == 0 {
		t.Error("Fig5: no EBSN resets recorded")
	}
	// EBSN makes more progress than basic in the same window.
	if eb, ba := ebsn.Trace.Count(trace.Send), basic.Trace.Count(trace.Send); eb <= ba {
		t.Errorf("Fig5 vs Fig3: EBSN sent %d fresh segments, basic %d", eb, ba)
	}
}

func TestOptimalPacketSize(t *testing.T) {
	points, err := Fig7(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	size, tput := OptimalPacketSize(points, time.Second)
	if size == 0 || tput <= 0 {
		t.Fatal("no optimum found")
	}
	// At bad=1s among {128,512,1536} the paper's effect puts the optimum
	// in the interior or at 512, never at 1536.
	if size == 1536 {
		t.Errorf("optimum at the largest size %v, contradicting the fragmentation penalty", size)
	}
	if s, v := OptimalPacketSize(points, 99*time.Hour); s != 0 || v > 0 {
		t.Error("missing bad period should return zero optimum")
	}
}

func TestRenderersProduceTablesAndCSV(t *testing.T) {
	opt := Options{
		Replications: 2,
		Transfer:     20 * units.KB,
		PacketSizes:  []units.ByteSize{512},
		BadPeriods:   []time.Duration{time.Second},
	}
	tp, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	table := RenderThroughputTable("Fig 7", tp)
	if !strings.Contains(table, "Fig 7") || !strings.Contains(table, "512B") || !strings.Contains(table, "tput_th") {
		t.Errorf("throughput table malformed:\n%s", table)
	}
	csv := ThroughputCSV(tp)
	if !strings.Contains(csv, "basic,1.0,512,") {
		t.Errorf("throughput CSV malformed:\n%s", csv)
	}

	rp, err := Fig9(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	rtable := RenderRetransTable("Fig 9", rp)
	if !strings.Contains(rtable, "[basic]") || !strings.Contains(rtable, "[ebsn]") {
		t.Errorf("retrans table malformed:\n%s", rtable)
	}
	rcsv := RetransCSV(rp)
	if !strings.Contains(rcsv, "ebsn,1.0,512,") {
		t.Errorf("retrans CSV malformed:\n%s", rcsv)
	}

	lp, err := LANStudy(context.Background(), Options{Replications: 2, Transfer: 256 * units.KB, BadPeriods: []time.Duration{800 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	ltable := RenderLANTable("Fig 10/11", lp)
	if !strings.Contains(ltable, "800ms") || !strings.Contains(ltable, "ebsn") {
		t.Errorf("LAN table malformed:\n%s", ltable)
	}
	lcsv := LANCSV(lp)
	if !strings.Contains(lcsv, "basic,0.8,") {
		t.Errorf("LAN CSV malformed:\n%s", lcsv)
	}
}

func TestFig8GoodputNearOne(t *testing.T) {
	// The paper's second metric: EBSN goodput approaches 1.0 while basic
	// TCP's sits visibly lower under long fades.
	opt := Options{
		Replications: 3,
		Transfer:     40 * units.KB,
		PacketSizes:  []units.ByteSize{512},
		BadPeriods:   []time.Duration{4 * time.Second},
	}
	ebsnPts, err := Fig8(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	basicPts, err := Fig7(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ebsn, basic := ebsnPts[0], basicPts[0]
	if ebsn.Goodput == nil || basic.Goodput == nil {
		t.Fatal("goodput samples missing")
	}
	if g := ebsn.Goodput.Mean(); g < 0.93 {
		t.Errorf("EBSN goodput = %.3f, want ~1.0", g)
	}
	if ebsn.Goodput.Mean() <= basic.Goodput.Mean() {
		t.Errorf("EBSN goodput %.3f not above basic %.3f",
			ebsn.Goodput.Mean(), basic.Goodput.Mean())
	}
	if !strings.Contains(ThroughputCSV([]ThroughputPoint{ebsn}), "goodput_mean") {
		t.Error("CSV header missing goodput column")
	}
}
