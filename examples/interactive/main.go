// Interactive workloads: the paper's introduction motivates "ftp, telnet,
// www-access" over wireless but evaluates only bulk transfer. This example
// runs the other two application shapes over the same lossy topology and
// shows that EBSN's timer protection translates into user-visible latency:
// faster page loads and tighter keystroke echo tails.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/units"
)

func main() {
	bad := 4 * time.Second
	fmt.Printf("wide-area preset, mean good 10s / bad %v\n\n", bad)

	fmt.Println("www-access: 10 pages of 8KB, 2s think time")
	fmt.Printf("%-14s %14s %14s %10s\n", "scheme", "mean load", "p95 load", "timeouts")
	for _, scheme := range []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN} {
		r, err := core.RunWeb(core.WAN(scheme, 576, bad), core.WebWorkload{
			Pages: 10, PageSize: 8 * units.KB, ThinkTime: 2 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.2fs %12.2fs %10d\n",
			scheme, r.MeanLoadSec, r.P95LoadSec, r.Timeouts)
	}

	fmt.Println("\ntelnet: 150 keystrokes, 500ms apart, 4B writes")
	fmt.Printf("%-14s %14s %14s %10s\n", "scheme", "mean echo", "p95 echo", "timeouts")
	for _, scheme := range []bs.Scheme{bs.Basic, bs.LocalRecovery, bs.EBSN} {
		r, err := core.RunTelnet(core.WAN(scheme, 576, bad), core.TelnetWorkload{
			Keystrokes: 150, Interval: 500 * time.Millisecond, WriteSize: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.3fs %12.3fs %10d\n",
			scheme, r.MeanLatency, r.P95Latency, r.Timeouts)
	}

	fmt.Println(`
Bulk transfer hides latency behind throughput; interactive traffic exposes
it. A spurious timeout during local recovery not only collapses the window
— it adds a full backed-off RTO to whatever the user is waiting for. EBSN
removes exactly that term.`)
}
