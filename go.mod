module wtcp

go 1.22
