package link

import (
	"testing"
	"time"

	"wtcp/internal/packet"
	"wtcp/internal/sim"
	"wtcp/internal/units"
)

func TestInterceptorConsumesDelivery(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l, err := New(s, Config{Name: "t", Rate: units.Mbps}, nil,
		func(p *packet.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	var seen []*packet.Packet
	l.SetInterceptor(func(p *packet.Packet) bool {
		seen = append(seen, p)
		return p.ID != 2 // consume packet 2
	})
	for i := uint64(1); i <= 3; i++ {
		l.Send(mkData(i, 100))
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Errorf("interceptor saw %d deliveries, want 3", len(seen))
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("deliveries = %v, want packets 1 and 3", got)
	}
	st := l.Stats()
	// The consumed packet is not counted as delivered, keeping
	// Delivered+Corrupted <= Sent.
	if st.Sent != 3 || st.Delivered != 2 || st.Corrupted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInterceptorRemovable(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l, err := New(s, Config{Name: "t", Rate: units.Mbps}, nil,
		func(p *packet.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	l.SetInterceptor(func(*packet.Packet) bool { return false })
	l.Send(mkData(1, 100))
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	l.SetInterceptor(nil)
	l.Send(mkData(2, 100))
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("deliveries after removal = %v, want only packet 2", got)
	}
}

func TestInjectBypassesTransmitter(t *testing.T) {
	s := sim.New()
	var got []*packet.Packet
	l, err := New(s, Config{Name: "t", Rate: units.Kbps, Delay: time.Second}, nil,
		func(p *packet.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	// Inject delivers immediately: no queue, no serialization, no delay.
	l.Inject(mkData(9, 100))
	if len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("injected packet not delivered synchronously: %v", got)
	}
	st := l.Stats()
	if st.Injected != 1 || st.Sent != 0 || st.Delivered != 0 {
		t.Errorf("stats = %+v; injection must not count as sent or delivered", st)
	}
}
