package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// scenarioFile is the JSON scenario format accepted by -config. Durations
// are human-readable strings ("4s", "800ms"); omitted fields keep the
// preset's value. Example:
//
//	{
//	  "preset": "wan",
//	  "scheme": "ebsn",
//	  "packet_size_bytes": 1536,
//	  "mean_bad": "4s",
//	  "transfer_kb": 100,
//	  "sack": true,
//	  "seed": 7
//	}
type scenarioFile struct {
	Preset          string `json:"preset"` // "wan" (default) or "lan"
	Scheme          string `json:"scheme"`
	PacketSizeBytes int    `json:"packet_size_bytes"`
	TransferKB      int64  `json:"transfer_kb"`
	WindowKB        int    `json:"window_kb"`
	MeanGood        string `json:"mean_good"`
	MeanBad         string `json:"mean_bad"`
	Deterministic   bool   `json:"deterministic"`
	Variant         string `json:"variant"` // tahoe (default), reno, newreno
	DelayedAcks     bool   `json:"delayed_acks"`
	SACK            bool   `json:"sack"`
	ECN             bool   `json:"ecn"`
	NotifyEvery     int    `json:"notify_every"`
	CrossTrafficPct int    `json:"cross_traffic_pct"` // % of wired capacity
	Seed            int64  `json:"seed"`
	CollectTrace    bool   `json:"collect_trace"`
}

// loadScenario reads and validates a JSON scenario into a runnable
// configuration.
func loadScenario(path string) (core.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return core.Config{}, fmt.Errorf("read scenario: %w", err)
	}
	var sf scenarioFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return core.Config{}, fmt.Errorf("parse scenario %s: %w", path, err)
	}
	return sf.build()
}

// build converts the file into a core.Config.
func (sf scenarioFile) build() (core.Config, error) {
	scheme := bs.Basic
	if sf.Scheme != "" {
		s, err := bs.ParseScheme(sf.Scheme)
		if err != nil {
			return core.Config{}, err
		}
		scheme = s
	}
	meanBad := 2 * time.Second
	if sf.MeanBad != "" {
		d, err := time.ParseDuration(sf.MeanBad)
		if err != nil {
			return core.Config{}, fmt.Errorf("mean_bad: %w", err)
		}
		meanBad = d
	}

	var cfg core.Config
	switch sf.Preset {
	case "", "wan":
		size := units.ByteSize(576)
		if sf.PacketSizeBytes > 0 {
			size = units.ByteSize(sf.PacketSizeBytes)
		}
		cfg = core.WAN(scheme, size, meanBad)
	case "lan":
		cfg = core.LAN(scheme, meanBad)
		if sf.PacketSizeBytes > 0 {
			cfg.PacketSize = units.ByteSize(sf.PacketSizeBytes)
		}
	default:
		return core.Config{}, fmt.Errorf("unknown preset %q (want wan or lan)", sf.Preset)
	}

	if sf.MeanGood != "" {
		d, err := time.ParseDuration(sf.MeanGood)
		if err != nil {
			return core.Config{}, fmt.Errorf("mean_good: %w", err)
		}
		cfg.Channel.MeanGood = d
	}
	cfg.Channel.Deterministic = sf.Deterministic
	if sf.TransferKB > 0 {
		cfg.TransferSize = units.ByteSize(sf.TransferKB) * units.KB
	}
	if sf.WindowKB > 0 {
		cfg.Window = units.ByteSize(sf.WindowKB) * units.KB
	}
	switch sf.Variant {
	case "", "tahoe":
	case "reno":
		cfg.Variant = tcp.Reno
	case "newreno":
		cfg.Variant = tcp.NewReno
	default:
		return core.Config{}, fmt.Errorf("unknown variant %q", sf.Variant)
	}
	cfg.DelayedAcks = sf.DelayedAcks
	cfg.SACK = sf.SACK
	cfg.ECN = sf.ECN
	cfg.NotifyEvery = sf.NotifyEvery
	if sf.CrossTrafficPct > 0 {
		cfg.CrossTraffic = core.CrossTraffic{
			Rate: units.BitRate(float64(sf.CrossTrafficPct) / 100 * float64(cfg.WiredRate)),
		}
	}
	if sf.Seed != 0 {
		cfg.Seed = sf.Seed
	}
	cfg.CollectTrace = sf.CollectTrace
	return cfg, cfg.Validate()
}
