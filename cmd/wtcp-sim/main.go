// Command wtcp-sim runs one simulated bulk transfer over the paper's
// FH-BS-MH topology and prints the measured metrics.
//
// Examples:
//
//	wtcp-sim -scheme basic -packet 576 -bad 4s
//	wtcp-sim -scheme ebsn -packet 1536 -bad 2s -reps 5
//	wtcp-sim -lan -scheme ebsn -bad 800ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/experiment"
	"wtcp/internal/prof"
	"wtcp/internal/scenario"
	"wtcp/internal/sim"
	"wtcp/internal/stats"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wtcp-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wtcp-sim", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "basic", "base-station scheme: basic|localrecovery|ebsn|sourcequench|snoop|split")
		variant    = fs.String("variant", "tahoe", "TCP sender variant: tahoe|reno|newreno|sack")
		packet     = fs.Int("packet", 576, "wired packet size in bytes (including 40-byte header)")
		bad        = fs.Duration("bad", 2*time.Second, "mean bad-period length")
		good       = fs.Duration("good", 0, "mean good-period length (0 = paper preset)")
		transfer   = fs.Int64("transfer", 0, "transfer size in KB (0 = paper preset)")
		lan        = fs.Bool("lan", false, "use the local-area preset instead of wide-area")
		seed       = fs.Int64("seed", 1, "base random seed")
		reps       = fs.Int("reps", 1, "independent replications")
		verbose    = fs.Bool("v", false, "print per-component counters")
		configPath = fs.String("config", "", "JSON scenario file (overrides the scenario flags)")
		jsonOut    = fs.Bool("json", false, "emit machine-readable JSON results")
		checks     = fs.Bool("checks", false, "enable runtime invariant checking (also arms the no-progress watchdog)")
		strict     = fs.Bool("strict", false, "arm the protocol-conformance oracle: abort the run on the first Tahoe/ARQ/EBSN rule violation, naming the rule and event")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")

		maxEvents   = fs.Int64("max-events", 0, "per-run fired-event budget (0 = engine default, negative = unlimited)")
		maxVTime    = fs.Duration("max-vtime", 0, "per-run virtual-time budget (0 = none)")
		runDeadline = fs.Duration("run-deadline", 0, "per-run wall-clock deadline (0 = engine default, negative = unlimited)")
		maxHeap     = fs.Int64("max-heap", 0, "per-run heap ceiling in bytes (0 = none)")
		noRunBudget = fs.Bool("no-run-budget", false, "disable the default per-run event and wall-clock ceilings")
		statusPath  = fs.String("status", "", "write a health heartbeat JSON to this file while running (poll it, or send SIGUSR1 for a stderr dump)")

		cellFlows   = fs.Int("cell", 0, "cell-scale mode: simulate this many concurrent flows on the flat engine (try 1000, 10000, 50000)")
		cellPolicy  = fs.String("cell-policy", "roundrobin", "cell radio scheduling: fifo|roundrobin|csdp")
		cellBad     = fs.Duration("cell-bad", 0, "cell mean bad-period length (0 = preset's 500ms)")
		cellHorizon = fs.Duration("cell-horizon", 0, "cell virtual-time horizon (0 = preset's 60s)")
		cellOracle  = fs.Int("cell-oracle", 0, "attach the conformance oracle to this many sampled flows")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "wtcp-sim:", err)
		}
	}()
	if *cellFlows < 0 {
		return fmt.Errorf("-cell %d: flow count must be positive", *cellFlows)
	}
	if *cellFlows > 0 {
		return runCellMode(cellOptions{
			flows:   *cellFlows,
			policy:  *cellPolicy,
			bad:     *cellBad,
			horizon: *cellHorizon,
			oracle:  *cellOracle,
			seed:    *seed,
			jsonOut: *jsonOut,
			budget: sim.Budget{MaxEvents: *maxEvents, MaxVirtual: *maxVTime,
				WallClock: *runDeadline, MaxHeapBytes: *maxHeap},
		})
	}
	scheme, err := bs.ParseScheme(*schemeName)
	if err != nil {
		return err
	}
	sendVariant, err := tcp.ParseVariant(*variant)
	if err != nil {
		return err
	}

	var fromFile *core.Config
	if *configPath != "" {
		loaded, err := scenario.Load(*configPath)
		if err != nil {
			return err
		}
		fromFile = &loaded
		scheme = loaded.Scheme
	}

	build := func(seed int64) core.Config {
		var cfg core.Config
		if fromFile != nil {
			cfg = *fromFile
			cfg.Seed = cfg.Seed + seed - fromFile.Seed // offset for replications
		} else {
			if *lan {
				cfg = core.LAN(scheme, *bad)
			} else {
				cfg = core.WAN(scheme, units.ByteSize(*packet), *bad)
			}
			if *good > 0 {
				cfg.Channel.MeanGood = *good
			}
			if *transfer > 0 {
				cfg.TransferSize = units.ByteSize(*transfer) * units.KB
			}
			cfg.Variant = sendVariant
			cfg.Seed = seed
		}
		if *checks {
			cfg.Checks = true
		}
		if *strict {
			cfg.Oracle = true
		}
		// Budget flags override the scenario file's budget field by field;
		// whatever neither sets falls back to the engine defaults (the
		// same-instant-livelock guard) unless -no-run-budget.
		b := sim.Budget{MaxEvents: *maxEvents, MaxVirtual: *maxVTime,
			WallClock: *runDeadline, MaxHeapBytes: *maxHeap}.Or(cfg.Budget)
		if !*noRunBudget {
			b = b.Or(sim.Budget{MaxEvents: experiment.DefaultRunMaxEvents, WallClock: experiment.DefaultRunWall})
		}
		cfg.Budget = b
		return cfg
	}

	cfg := build(*seed)
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("scheme=%s packet=%dB transfer=%s window=%s bad=%v good=%v tput_th=%.2fKbps\n",
			scheme, cfg.PacketSize, cfg.TransferSize, cfg.Window,
			cfg.Channel.MeanBad, cfg.Channel.MeanGood, cfg.TheoreticalMaxKbps())
	}

	health := experiment.NewHealth()
	stopBeat := health.Heartbeat(*statusPath, os.Stderr)
	defer stopBeat()

	var tput, goodput, retrans, timeouts stats.Sample
	var last *core.Result
	aborted, exhausted := 0, 0
	for i := 0; i < *reps; i++ {
		repCfg := build(*seed + int64(i))
		hid := health.RunStarted("wtcp-sim", repCfg.Seed)
		r, err := core.Run(repCfg)
		var events uint64
		if r != nil {
			events = r.Events
		}
		health.RunFinished(hid, events, err == nil && !(r != nil && r.Aborted))
		var be *sim.BudgetError
		if errors.As(err, &be) {
			exhausted++
			fmt.Fprintf(os.Stderr, "rep %d: %v\n", i+1, be)
			continue
		}
		if err != nil {
			return err
		}
		if r.Aborted {
			aborted++
			fmt.Fprintf(os.Stderr, "rep %d: %s\n", i+1, r.AbortReason)
			last = r
			continue
		}
		if !r.Completed {
			fmt.Printf("rep %d: transfer did not complete within the horizon\n", i+1)
			continue
		}
		tput.Add(r.Summary.ThroughputKbps)
		goodput.Add(r.Summary.Goodput)
		retrans.Add(r.Summary.RetransmittedKB())
		timeouts.Add(float64(r.Summary.Timeouts))
		last = r
	}
	stopBeat()
	if tput.N() == 0 {
		switch {
		case exhausted > 0 && aborted == 0:
			return fmt.Errorf("every replication exhausted its resource budget (%d of %d); raise -max-events/-run-deadline or pass -no-run-budget if the scenario is legitimately this heavy", exhausted, *reps)
		case aborted > 0 && exhausted == 0:
			return fmt.Errorf("every replication was aborted by the watchdog (%d of %d); the scenario's faults leave the transfer no way to finish", aborted, *reps)
		case aborted > 0:
			return fmt.Errorf("every replication was halted (%d watchdog aborts, %d budget exhaustions of %d reps)", aborted, exhausted, *reps)
		}
		return fmt.Errorf("no replication completed")
	}
	if aborted > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d replications aborted by the watchdog; summary covers the rest\n", aborted, *reps)
	}
	if exhausted > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d replications exhausted a resource budget; summary covers the rest\n", exhausted, *reps)
	}
	if *jsonOut {
		return emitJSON(cfg, &tput, &goodput, &retrans, &timeouts, last)
	}
	fmt.Printf("throughput   %.2f Kbps (sd %.1f%%)\n", tput.Mean(), 100*tput.RelStdDev())
	fmt.Printf("goodput      %.3f\n", goodput.Mean())
	fmt.Printf("retransmitted %.1f KB\n", retrans.Mean())
	fmt.Printf("timeouts     %.1f\n", timeouts.Mean())

	if *verbose && last != nil {
		fmt.Printf("\nlast replication detail:\n")
		fmt.Printf("  sender:   %+v\n", last.Sender)
		fmt.Printf("  sink:     %+v\n", last.Sink)
		fmt.Printf("  bs:       %+v\n", last.BS)
		fmt.Printf("  mobile:   %+v\n", last.Mobile)
		fmt.Printf("  downlink: %+v\n", last.WirelessDown)
		fmt.Printf("  uplink:   %+v\n", last.WirelessUp)
		if last.Chaos != nil {
			fmt.Printf("  chaos:    %+v\n", *last.Chaos)
		}
	}
	return nil
}
