package experiment

import (
	"fmt"
	"strings"
	"time"

	"wtcp/internal/bs"
	"wtcp/internal/core"
	"wtcp/internal/stats"
	"wtcp/internal/tcp"
	"wtcp/internal/units"
)

// ZooPoint is one (sender variant, base-station scheme) cell of the
// protocol-zoo head-to-head study: the same seeded Gilbert channel driven
// through every combination of end-to-end TCP variant and link-layer
// assistance the related work proposes.
type ZooPoint struct {
	Variant        tcp.Variant
	Scheme         bs.Scheme
	ThroughputKbps *stats.Sample
	Goodput        *stats.Sample
	TimeoutsAvg    float64
	RetransKBAvg   float64
}

// ZooOptions tunes the protocol-zoo study.
type ZooOptions struct {
	Replications int
	Transfer     units.ByteSize
	PacketSize   units.ByteSize
	BadPeriod    time.Duration
	BaseSeed     int64
	// Variants and Schemes default to the full zoo: every sender variant
	// against {Basic, EBSN, Snoop, SplitConnection}.
	Variants []tcp.Variant
	Schemes  []bs.Scheme
}

func (o ZooOptions) withDefaults() ZooOptions {
	if o.Replications <= 0 {
		o.Replications = 3
	}
	if o.Transfer <= 0 {
		o.Transfer = 100 * units.KB
	}
	if o.PacketSize <= 0 {
		o.PacketSize = 576
	}
	if o.BadPeriod <= 0 {
		o.BadPeriod = 2 * time.Second
	}
	if len(o.Variants) == 0 {
		o.Variants = []tcp.Variant{tcp.Tahoe, tcp.Reno, tcp.NewReno, tcp.SACKVariant}
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []bs.Scheme{bs.Basic, bs.EBSN, bs.Snoop, bs.SplitConnection}
	}
	return o
}

// ZooStudy runs the variant x scheme grid on the paper's WAN channel.
// Every cell uses the same seeds, so differences are attributable to the
// protocols, and every run has the conformance oracle armed under the
// cell's own variant profile — an oracle violation fails the study.
func ZooStudy(opt ZooOptions) ([]ZooPoint, error) {
	opt = opt.withDefaults()
	var out []ZooPoint
	for _, variant := range opt.Variants {
		for _, scheme := range opt.Schemes {
			var tput, goodput stats.Sample
			var timeouts, retrans float64
			for seed := int64(1); seed <= int64(opt.Replications); seed++ {
				cfg := core.WAN(scheme, opt.PacketSize, opt.BadPeriod)
				cfg.TransferSize = opt.Transfer
				cfg.Variant = variant
				cfg.Oracle = true
				cfg.Seed = opt.BaseSeed + seed
				r, err := core.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("zoo %s/%s seed %d: %w", variant, scheme, cfg.Seed, err)
				}
				if !r.Completed {
					return nil, fmt.Errorf("zoo %s/%s seed %d: transfer did not complete", variant, scheme, cfg.Seed)
				}
				tput.Add(r.Summary.ThroughputKbps)
				goodput.Add(r.Summary.Goodput)
				timeouts += float64(r.Summary.Timeouts)
				retrans += r.Summary.RetransmittedKB()
			}
			out = append(out, ZooPoint{
				Variant:        variant,
				Scheme:         scheme,
				ThroughputKbps: &tput,
				Goodput:        &goodput,
				TimeoutsAvg:    timeouts / float64(opt.Replications),
				RetransKBAvg:   retrans / float64(opt.Replications),
			})
		}
	}
	return out, nil
}

// ZooCell returns the study point for one (variant, scheme) pair, or nil.
func ZooCell(points []ZooPoint, v tcp.Variant, s bs.Scheme) *ZooPoint {
	for i := range points {
		if points[i].Variant == v && points[i].Scheme == s {
			return &points[i]
		}
	}
	return nil
}

// RenderZooTable formats the head-to-head study, one row per variant and
// one column group per scheme.
func RenderZooTable(title string, points []ZooPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s  %-8s  %-16s  %-10s  %-9s  %-10s\n",
		"variant", "scheme", "tput(Kbps)", "goodput", "timeouts", "retrans(KB)")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s  %-8s  %-16s  %-10s  %-9.1f  %-10.1f\n",
			p.Variant, p.Scheme,
			fmt.Sprintf("%.2f±%.0f%%", p.ThroughputKbps.Mean(), 100*p.ThroughputKbps.RelStdDev()),
			fmt.Sprintf("%.3f", p.Goodput.Mean()),
			p.TimeoutsAvg, p.RetransKBAvg)
	}
	return b.String()
}

// ZooCSV emits the study as CSV.
func ZooCSV(points []ZooPoint) string {
	var b strings.Builder
	b.WriteString("variant,scheme,tput_kbps_mean,tput_kbps_stddev,goodput_mean,timeouts_avg,retrans_kb_avg\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%s,%.2f,%.2f,%.4f,%.1f,%.1f\n",
			p.Variant, p.Scheme,
			p.ThroughputKbps.Mean(), p.ThroughputKbps.StdDev(),
			p.Goodput.Mean(), p.TimeoutsAvg, p.RetransKBAvg)
	}
	return b.String()
}
