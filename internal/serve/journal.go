package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The pending journal is the server's accepted-work ledger: a request
// is journaled the moment it wins an admission slot — that is the
// definition of "accepted" — and the entry is removed only when the
// request reaches a terminal answer (success, failure, or deadline).
// Work canceled by a graceful drain keeps its entry, so a restarted
// server finds it, re-executes it (sweeps warm-start from their
// checkpoints, so finished points are not run twice), and caches the
// result for the client to collect from /v1/result. An accepted
// request can therefore be shed by a crash or drain but never silently
// lost.

// pendingRequest is one journaled accepted request.
type pendingRequest struct {
	// Kind routes re-execution: "run", "sweep", or "advise".
	Kind string `json:"kind"`
	// Fingerprint is the request's content address.
	Fingerprint string `json:"fingerprint"`
	// Body is the original request body (for run/sweep) or the
	// canonical query (for advise), sufficient to re-execute.
	Body json.RawMessage `json:"body"`
}

// journal persists pendingRequests as one file per fingerprint under
// dir, each written atomically.
type journal struct {
	dir string
}

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	return &journal{dir: dir}, nil
}

func (j *journal) path(fp string) string {
	return filepath.Join(j.dir, fp+".json")
}

// put records an accepted request (atomic write-rename).
func (j *journal) put(p pendingRequest) error {
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	tmp, err := os.CreateTemp(j.dir, p.Fingerprint+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: journal temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: journal write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: journal close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path(p.Fingerprint)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: journal commit: %w", err)
	}
	return nil
}

// remove retires a settled request's entry.
func (j *journal) remove(fp string) {
	os.Remove(j.path(fp))
}

// has reports whether fp has a pending entry.
func (j *journal) has(fp string) bool {
	_, err := os.Stat(j.path(fp))
	return err == nil
}

// list returns every pending entry, sorted by fingerprint for a
// deterministic resume order. Unreadable entries are skipped (a torn
// temp file cannot exist — writes are atomic — but a hand-edited one
// should not wedge startup).
func (j *journal) list() ([]pendingRequest, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	var out []pendingRequest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(j.dir, e.Name()))
		if err != nil {
			continue
		}
		var p pendingRequest
		if json.Unmarshal(data, &p) != nil || !validFingerprint(p.Fingerprint) {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Fingerprint < out[k].Fingerprint })
	return out, nil
}
