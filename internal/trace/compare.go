package trace

import (
	"fmt"
	"strings"
	"time"
)

// RenderComparison draws two traces side by side on a shared time axis —
// the visual argument of Figures 3 vs 5: the left panel's stalls and
// retransmission marks against the right panel's uninterrupted staircase.
func RenderComparison(leftTitle string, left *Trace, rightTitle string, right *Trace,
	panelWidth, height int, horizon time.Duration) string {
	if panelWidth < 20 {
		panelWidth = 20
	}
	if height < 10 {
		height = 10
	}
	lp := panelLines(left, panelWidth, height, horizon)
	rp := panelLines(right, panelWidth, height, horizon)

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s   %s\n", panelWidth+1, clip(leftTitle, panelWidth), clip(rightTitle, panelWidth))
	for i := range lp {
		fmt.Fprintf(&b, "%s   %s\n", lp[i], rp[i])
	}
	axis := "+" + strings.Repeat("-", panelWidth)
	fmt.Fprintf(&b, "%s   %s\n", axis, axis)
	label := fmt.Sprintf(" 0%*s", panelWidth-1, fmt.Sprintf("%.0fs", horizon.Seconds()))
	fmt.Fprintf(&b, "%s   %s\n", label, label)
	b.WriteString("'.' send   'o' source retransmission   (packet number mod 90, bottom-up)\n")
	return b.String()
}

// panelLines renders one trace's scatter rows (no axes).
func panelLines(tr *Trace, width, height int, horizon time.Duration) []string {
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	if tr != nil {
		for _, e := range tr.Events() {
			if e.Kind != Send && e.Kind != Retransmit {
				continue
			}
			if horizon > 0 && e.At > horizon {
				continue
			}
			x := int(float64(width-1) * float64(e.At) / float64(horizon))
			y := int(float64(height-1) * float64(e.PacketNo%PacketModulo) / float64(PacketModulo-1))
			row := height - 1 - y
			mark := byte('.')
			if e.Kind == Retransmit {
				mark = 'o'
			}
			if grid[row][x] == ' ' || mark == 'o' {
				grid[row][x] = mark
			}
		}
	}
	out := make([]string, height)
	for i, row := range grid {
		out[i] = "|" + string(row)
	}
	return out
}

// clip truncates a title to the panel width.
func clip(s string, w int) string {
	if len(s) <= w {
		return s
	}
	return s[:w]
}
