package handoff

import (
	"testing"
	"time"

	"wtcp/internal/units"
)

func TestConfigValidate(t *testing.T) {
	if err := Defaults(Plain).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown scheme", func(c *Config) { c.Scheme = 0 }},
		{"packet below header", func(c *Config) { c.PacketSize = 10 }},
		{"zero transfer", func(c *Config) { c.TransferSize = 0 }},
		{"window below segment", func(c *Config) { c.Window = 100 }},
		{"zero wired rate", func(c *Config) { c.WiredRate = 0 }},
		{"zero dwell", func(c *Config) { c.Dwell = 0 }},
		{"negative latency", func(c *Config) { c.Latency = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Defaults(Plain)
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
			if _, err := Run(cfg); err == nil {
				t.Error("Run accepted invalid config")
			}
		})
	}
}

func TestSchemeString(t *testing.T) {
	if Plain.String() != "plain" || FastRetransmit.String() != "fastretransmit" {
		t.Error("scheme names")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should render")
	}
}

func TestNoHandoffsMeansCleanTransfer(t *testing.T) {
	cfg := Defaults(Plain)
	cfg.Dwell = time.Hour // never triggers within the transfer
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.Handoffs != 0 || r.Timeouts != 0 || r.DroppedAtHandoff != 0 {
		t.Errorf("clean run saw events: %+v", r)
	}
	// ~1.4-1.6 Mbps payload through a 2 Mbps stop-free cell.
	if r.ThroughputKbps < 1200 {
		t.Errorf("clean throughput = %.0f kbps", r.ThroughputKbps)
	}
}

func TestPlainTCPSuffersTimeoutsPerHandoff(t *testing.T) {
	r, err := Run(Defaults(Plain))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.Handoffs == 0 {
		t.Fatal("no handoffs happened")
	}
	if r.Timeouts == 0 {
		t.Error("plain TCP recovered without timeouts (losses should force RTO)")
	}
	if r.DroppedAtHandoff == 0 {
		t.Error("no packets lost to handoffs")
	}
}

func TestFastRetransmitEliminatesTimeouts(t *testing.T) {
	plain, err := Run(Defaults(Plain))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Run(Defaults(FastRetransmit))
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Completed {
		t.Fatal("fast-retransmit run did not complete")
	}
	if fr.Timeouts >= plain.Timeouts {
		t.Errorf("fast retransmit timeouts %d not below plain %d", fr.Timeouts, plain.Timeouts)
	}
	if fr.FastRetransmits == 0 {
		t.Error("the dupack nudge never triggered a fast retransmit")
	}
	// The headline: the transfer finishes sooner.
	if fr.Elapsed >= plain.Elapsed {
		t.Errorf("fast retransmit elapsed %v not below plain %v", fr.Elapsed, plain.Elapsed)
	}
	if fr.ThroughputKbps <= plain.ThroughputKbps {
		t.Errorf("fast retransmit %.0f kbps not above plain %.0f kbps",
			fr.ThroughputKbps, plain.ThroughputKbps)
	}
}

func TestLongerGapsHurtMore(t *testing.T) {
	short := Defaults(Plain)
	short.Latency = 50 * time.Millisecond
	long := Defaults(Plain)
	long.Latency = 500 * time.Millisecond
	rs, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Elapsed <= rs.Elapsed {
		t.Errorf("500ms gaps (%v) not slower than 50ms gaps (%v)", rl.Elapsed, rs.Elapsed)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := Run(Defaults(FastRetransmit))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Defaults(FastRetransmit))
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Timeouts != b.Timeouts || a.DroppedAtHandoff != b.DroppedAtHandoff {
		t.Error("same configuration diverged (run should be deterministic)")
	}
}

func TestSmallTransferAcrossManyHandoffs(t *testing.T) {
	cfg := Defaults(FastRetransmit)
	cfg.TransferSize = 4 * units.MB
	cfg.Dwell = 500 * time.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatal("long transfer with frequent handoffs did not complete")
	}
	if r.Handoffs < 10 {
		t.Errorf("handoffs = %d, want many", r.Handoffs)
	}
}
