// Package fleet distributes a sweep campaign across workers without
// giving up any guarantee the single-process engine provides.
//
// The shape is coordinator/worker over plain HTTP+JSON: the coordinator
// enumerates a campaign's point grid (experiment.SweepSpecs), shards it
// into work units, and leases units to workers; each worker executes
// its point exactly as the sequential engine would (same seeds, same
// retry/backoff schedule — experiment.RunPointSpec) and posts the raw
// replication records back. The coordinator merges results into the
// engine's own checkpoint file (experiment.Ledger), so running the
// ordinary figure sweeps against the merged file reloads every point
// and produces output byte-identical to a single-process run.
//
// The robustness machinery is the point of the package:
//
//   - Leases expire. A worker holds a unit only while its heartbeat
//     (lease renewal) keeps arriving; a SIGKILLed, hung, or partitioned
//     worker stops renewing, the lease lapses, and the unit returns to
//     the queue for reassignment. Nothing is lost.
//   - The ledger is the exactly-once boundary. Dispatch is at-least-once
//     by design (expiry and work stealing both re-issue units), but a
//     point settles exactly once: the first result recorded wins, and
//     every later post for the same key — a duplicated HTTP request, a
//     stolen unit's loser, a lease that expired in flight — is
//     acknowledged and dropped. Replications are deterministic, so the
//     duplicate would have carried identical bits anyway.
//   - Stragglers are stolen from. An idle worker re-leases a unit whose
//     holder has worked it for more than 4x the median unit time (the
//     PR-5 straggler signal applied at the fleet layer); first finisher
//     settles the point.
//   - Transient worker errors back off. Workers retry failed RPCs under
//     capped exponential backoff with deterministic jitter, and
//     pathological points quarantine through the same per-point circuit
//     breaker as the sequential engine, with the holding worker recorded
//     for the report's attribution table.
//   - Chaos is injectable. chaos.FleetFaults drops, duplicates, and
//     delays renewals and result posts, and kills a live worker, to
//     prove the above under fault rather than by argument.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"wtcp/internal/experiment"
	"wtcp/internal/scenario"
	"wtcp/internal/units"
)

// Campaign is the JSON manifest describing a sharded study: which
// figure sweeps to run and under which result-affecting options. It is
// the fleet analogue of a wtcp-sim scenario file (and shares its budget
// block); workers fetch it from the coordinator at startup so one
// document governs the whole fleet. Example:
//
//	{
//	  "sweeps": ["fig7", "fig8"],
//	  "replications": 5,
//	  "transfer_kb": 100,
//	  "packet_sizes": [128, 512, 1536],
//	  "bad_periods": ["1s", "4s"],
//	  "oracle": true,
//	  "supervise": true,
//	  "budget": {"max_events": 200000000, "wall_clock": "5m"}
//	}
type Campaign struct {
	// Sweeps names the figure sweeps whose point grids form the
	// campaign (experiment.SweepFig7 etc.).
	Sweeps []string `json:"sweeps"`
	// Replications per point (default 5, as in the engine).
	Replications int `json:"replications,omitempty"`
	// BaseSeed offsets all randomness.
	BaseSeed int64 `json:"base_seed,omitempty"`
	// TransferKB overrides the preset transfer size (KB); zero keeps
	// the paper's value.
	TransferKB int64 `json:"transfer_kb,omitempty"`
	// PacketSizes overrides the swept packet-size axis (bytes).
	PacketSizes []int `json:"packet_sizes,omitempty"`
	// BadPeriods overrides the swept bad-period axis ("1s", "800ms").
	BadPeriods []string `json:"bad_periods,omitempty"`
	// Retries bounds per-replication retries (engine semantics:
	// 0 = default of 1, negative disables).
	Retries int `json:"retries,omitempty"`
	// Checks and Oracle arm runtime invariant checking and the
	// conformance oracle inside every replication.
	Checks bool `json:"checks,omitempty"`
	Oracle bool `json:"oracle,omitempty"`
	// Supervise arms the per-point circuit breaker: pathological points
	// quarantine (attributed to their worker) instead of failing the
	// campaign.
	Supervise bool `json:"supervise,omitempty"`
	// Workers bounds how many replications of one point a single
	// fleet worker runs concurrently (experiment.Options.Workers;
	// results are identical for any value).
	Workers int `json:"workers,omitempty"`
	// Budget layers per-replication resource ceilings (shared schema
	// with wtcp-sim scenario files; see internal/scenario).
	Budget *scenario.Budget `json:"budget,omitempty"`
}

// ParseCampaign decodes and validates a campaign manifest. Unknown
// fields are rejected so a typoed knob fails loudly.
func ParseCampaign(data []byte) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("fleet: parse campaign: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// Validate rejects malformed manifests with messages that say how to
// fix the field.
func (c Campaign) Validate() error {
	if len(c.Sweeps) == 0 {
		return fmt.Errorf("fleet: campaign names no sweeps (want a list drawn from %q, %q, %q, %q)",
			experiment.SweepFig7, experiment.SweepFig8, experiment.SweepFig9, experiment.SweepLAN)
	}
	if _, err := c.Specs(); err != nil {
		return err
	}
	if c.Replications < 0 {
		return fmt.Errorf("fleet: replications %d is negative", c.Replications)
	}
	if c.TransferKB < 0 {
		return fmt.Errorf("fleet: transfer_kb %d is negative", c.TransferKB)
	}
	for _, s := range c.PacketSizes {
		if s <= 40 {
			return fmt.Errorf("fleet: packet size %d does not exceed the 40-byte TCP/IP header; the paper sweeps 128-1536", s)
		}
	}
	if _, err := c.badPeriods(); err != nil {
		return err
	}
	if c.Budget != nil {
		if _, err := c.Budget.Build(); err != nil {
			return err
		}
	}
	return nil
}

// badPeriods parses the overridden bad-period axis.
func (c Campaign) badPeriods() ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(c.BadPeriods))
	for i, v := range c.BadPeriods {
		d, err := scenario.ParsePositiveDur(fmt.Sprintf("bad_periods[%d]", i), v)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		if d == 0 {
			return nil, fmt.Errorf("fleet: bad_periods[%d] is empty; give a duration like \"1s\"", i)
		}
		out = append(out, d)
	}
	return out, nil
}

// Options maps the campaign onto the engine's result-affecting options.
// Every worker and the coordinator's ledger derive their Options from
// here, which is what keeps the ledger fingerprint, the workers' seeds,
// and the final merge pass mutually consistent.
func (c Campaign) Options() (experiment.Options, error) {
	bads, err := c.badPeriods()
	if err != nil {
		return experiment.Options{}, err
	}
	opt := experiment.Options{
		Replications: c.Replications,
		BaseSeed:     c.BaseSeed,
		Transfer:     units.ByteSize(c.TransferKB) * units.KB,
		BadPeriods:   bads,
		Retries:      c.Retries,
		Checks:       c.Checks,
		Oracle:       c.Oracle,
		Workers:      c.Workers,
	}
	for _, s := range c.PacketSizes {
		opt.PacketSizes = append(opt.PacketSizes, units.ByteSize(s))
	}
	if c.Budget != nil {
		b, err := c.Budget.Build()
		if err != nil {
			return experiment.Options{}, err
		}
		opt.RunBudget = b
	}
	return opt, nil
}

// Specs enumerates the campaign's full point grid in canonical order.
func (c Campaign) Specs() ([]experiment.PointSpec, error) {
	opt, err := c.Options()
	if err != nil {
		return nil, err
	}
	specs, err := experiment.SweepSpecs(opt, c.Sweeps)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return specs, nil
}
