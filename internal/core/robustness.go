package core

import (
	"fmt"
	"strings"

	"wtcp/internal/link"
	"wtcp/internal/sim"
)

// This file wires the kernel's invariant-checking hooks (sim.AddCheck)
// to the assembled topology and renders the watchdog's diagnostic
// snapshot. The invariants hold for every scheme and under every fault
// plan; a violation means a protocol-implementation bug, never a network
// condition.

// registerInvariants installs the standard run-time checks:
//
//   - sender-state: the TCP source's window and sequence geometry
//     (cwnd bounds, snd_una <= snd_nxt <= snd_max <= total).
//   - snd_una / rcv_nxt / delivered monotonicity: acknowledged and
//     in-order byte counters never move backwards.
//   - per-link conservation: a hop cannot deliver (or corrupt) more
//     transmissions than were handed to it. Fault-injected duplicates
//     bypass the transmitter and are counted separately (Stats.Injected),
//     so the bound survives chaos duplication.
//   - end-to-end conservation: the sink's in-order byte count never
//     exceeds the highest byte the source has sent. This form — unlike a
//     segment-count comparison — also survives duplication and replay.
//
// The kernel adds its own event-heap structure check alongside these.
func (tp *topology) registerInvariants() {
	tp.sim.AddCheck("sender-state", tp.sender.CheckInvariants)
	tp.sim.AddCheck("snd-una-monotonic", sim.Monotonic("snd_una", tp.sender.SndUna))
	tp.sim.AddCheck("rcv-nxt-monotonic", sim.Monotonic("rcv_nxt", tp.sink.RcvNxt))
	tp.sim.AddCheck("delivered-monotonic", sim.Monotonic("delivered bytes",
		func() int64 { return int64(tp.sink.Delivered()) }))
	tp.sim.AddCheck("sink-within-sent", sim.Conservation("in-order sink bytes vs highest byte sent",
		tp.sender.SndMax, tp.sink.RcvNxt))
	for _, l := range []*link.Link{tp.wiredFwd, tp.wiredRev, tp.wirelessDown, tp.wirelessUp} {
		l := l
		tp.sim.AddCheck("conservation-"+l.Name(), sim.Conservation(
			l.Name()+" deliveries vs transmissions",
			func() int64 { return int64(l.Stats().Sent) },
			func() int64 { st := l.Stats(); return int64(st.Delivered + st.Corrupted) },
		))
	}
}

// snapshot renders the diagnostic state dump the watchdog attaches to a
// StallError: enough of each layer's state to tell where the transfer
// wedged without re-running under a tracer.
func (tp *topology) snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  sender: snd_una=%d snd_nxt=%d snd_max=%d cwnd=%d done=%v\n",
		tp.sender.SndUna(), tp.sender.SndNxt(), tp.sender.SndMax(), tp.sender.Cwnd(), tp.sender.Done())
	fmt.Fprintf(&b, "  sink:   rcv_nxt=%d delivered=%d\n", tp.sink.RcvNxt(), tp.sink.Delivered())
	st := tp.bs.Stats()
	fmt.Fprintf(&b, "  bs:     scheme=%v down=%v backlog=%d crashes=%d crash_lost=%d crash_discards=%d\n",
		tp.bs.Scheme(), tp.bs.Down(), tp.bs.Backlog(), st.Crashes, st.CrashLostPackets, st.CrashDiscards)
	for _, l := range []*link.Link{tp.wiredFwd, tp.wiredRev, tp.wirelessDown, tp.wirelessUp} {
		ls := l.Stats()
		fmt.Fprintf(&b, "  link %-13s queue=%d busy=%v sent=%d delivered=%d corrupted=%d injected=%d drops=%d\n",
			l.Name(), l.QueueLen(), l.Busy(), ls.Sent, ls.Delivered, ls.Corrupted, ls.Injected, ls.QueueDrops)
	}
	if tp.chaos != nil {
		cs := tp.chaos.Stats()
		fmt.Fprintf(&b, "  chaos:  storm_drops=%d corrupt=%d dups=%d reorders=%d notify_lost=%d notify_dup=%d notify_delayed=%d\n",
			cs.StormDrops, cs.CorruptDrops, cs.Duplicates, cs.Reorders,
			cs.NotifyDropped, cs.NotifyDuplicated, cs.NotifyDelayed)
	}
	return strings.TrimRight(b.String(), "\n")
}
