package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportQuick(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	code, err := run(context.Background(), []string{"-quick", "-reps", "2"}, f)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (all claims reproduced)", code)
	}
	md, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "# Replication report") {
		t.Error("report header missing")
	}
	if !strings.Contains(string(md), "All checked claims reproduced") {
		t.Error("all-clear marker missing")
	}
}

func TestReportRejectsBadFlags(t *testing.T) {
	if _, err := run(context.Background(), []string{"-nonsense"}, os.Stdout); err == nil {
		t.Error("unknown flag accepted")
	}
}
