package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// checkpointVersion guards the on-disk layout; a mismatched file is
// rejected rather than misread.
const checkpointVersion = 1

// pointRecord is one finished sweep point: its key and the raw
// per-replication records, already in seed order.
type pointRecord struct {
	Key  string      `json:"key"`
	Reps []RepRecord `json:"reps"`
}

// checkpointFile is the on-disk layout. Fingerprint ties the file to
// the Options that produced it: resuming a sweep under different
// result-affecting options would silently merge incompatible samples,
// so such a file is rejected with instructions instead.
type checkpointFile struct {
	Version     int           `json:"version"`
	Fingerprint string        `json:"fingerprint"`
	Points      []pointRecord `json:"points"`
	// Quarantined lists points the circuit breaker removed, in the
	// order the sweep reached them. The field is additive (absent in
	// older files), so the version stays at 1. A resumed sweep replays
	// these instead of re-running the pathological point.
	Quarantined []Quarantine `json:"quarantined,omitempty"`
}

// checkpoint is the in-memory store behind a checkpoint file. Several
// sweeps in one process (Fig7 then Fig8, say) may each open the same
// path sequentially; each instance loads what the previous one saved
// and appends its own points. While open, the store holds an exclusive
// advisory lock on <path>.lock: two engine processes pointed at the
// same checkpoint would silently clobber each other's persistLocked
// writes, so the second opener fails fast instead. The lock is released
// by close (each sweep closes its store when it returns) and by the
// kernel if the process dies, so a SIGKILLed campaign never leaves a
// stale lock behind.
type checkpoint struct {
	path        string
	fingerprint string
	unlock      func()

	mu        sync.Mutex
	order     []string
	points    map[string][]RepRecord
	quarOrder []string
	quars     map[string]Quarantine
}

// openCheckpoint loads path if it exists, or prepares an empty store.
// It takes the exclusive checkpoint lock first; a path already locked
// by a live process is refused with the holder named.
func openCheckpoint(path, fingerprint string) (*checkpoint, error) {
	unlock, err := acquireFileLock(path + ".lock")
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
	}
	ck := &checkpoint{path: path, fingerprint: fingerprint, unlock: unlock,
		points: map[string][]RepRecord{}, quars: map[string]Quarantine{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		ck.close()
		return nil, fmt.Errorf("experiment: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		ck.close()
		return nil, fmt.Errorf("experiment: parse checkpoint %s: %w", path, err)
	}
	if f.Version != checkpointVersion {
		ck.close()
		return nil, fmt.Errorf("experiment: checkpoint %s has version %d, want %d; delete it to start over",
			path, f.Version, checkpointVersion)
	}
	if f.Fingerprint != fingerprint {
		ck.close()
		return nil, fmt.Errorf("experiment: checkpoint %s was written under different options (fingerprint %q, this run %q); delete it or rerun with the original options",
			path, f.Fingerprint, fingerprint)
	}
	for _, p := range f.Points {
		if _, dup := ck.points[p.Key]; dup {
			ck.close()
			return nil, fmt.Errorf("experiment: checkpoint %s repeats point %q", path, p.Key)
		}
		ck.points[p.Key] = p.Reps
		ck.order = append(ck.order, p.Key)
	}
	for _, q := range f.Quarantined {
		if _, dup := ck.quars[q.Key]; dup {
			ck.close()
			return nil, fmt.Errorf("experiment: checkpoint %s repeats quarantined point %q", path, q.Key)
		}
		ck.quars[q.Key] = q
		ck.quarOrder = append(ck.quarOrder, q.Key)
	}
	return ck, nil
}

// close releases the exclusive checkpoint lock. Safe on nil (sweeps
// without a checkpoint) and idempotent.
func (ck *checkpoint) close() {
	if ck == nil {
		return
	}
	ck.mu.Lock()
	unlock := ck.unlock
	ck.unlock = nil
	ck.mu.Unlock()
	if unlock != nil {
		unlock()
	}
}

// get returns the stored replications for key, if the point finished in
// an earlier (or killed) run.
func (ck *checkpoint) get(key string) ([]RepRecord, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	reps, ok := ck.points[key]
	return reps, ok
}

// put records a finished point and persists the whole store atomically.
func (ck *checkpoint) put(key string, reps []RepRecord) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if _, dup := ck.points[key]; !dup {
		ck.order = append(ck.order, key)
	}
	ck.points[key] = reps
	return ck.persistLocked()
}

// getQuarantine returns the recorded quarantine for key, if the point
// was removed by the circuit breaker in an earlier (or killed) run.
func (ck *checkpoint) getQuarantine(key string) (Quarantine, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	q, ok := ck.quars[key]
	return q, ok
}

// putQuarantine records a quarantined point and persists the store.
func (ck *checkpoint) putQuarantine(q Quarantine) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if _, dup := ck.quars[q.Key]; !dup {
		ck.quarOrder = append(ck.quarOrder, q.Key)
	}
	ck.quars[q.Key] = q
	return ck.persistLocked()
}

// persistLocked writes the whole store atomically: the file is fully
// written to a temp name in the same directory and renamed over the old
// one, so a kill at any instant leaves either the previous complete
// checkpoint or the new one — never a torn file. Caller holds ck.mu.
func (ck *checkpoint) persistLocked() error {
	f := checkpointFile{Version: checkpointVersion, Fingerprint: ck.fingerprint}
	for _, k := range ck.order {
		f.Points = append(f.Points, pointRecord{Key: k, Reps: ck.points[k]})
	}
	for _, k := range ck.quarOrder {
		f.Quarantined = append(f.Quarantined, ck.quars[k])
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(ck.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiment: checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(ck.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("experiment: checkpoint temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), ck.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiment: commit checkpoint: %w", err)
	}
	return nil
}
