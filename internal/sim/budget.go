package sim

import (
	"fmt"
	"runtime/metrics"
	"time"
)

// This file gives the kernel per-run resource budgets: hard ceilings on
// events processed, virtual time, wall-clock time, and heap footprint.
// The virtual-time watchdog (check.go) is itself scheduled in virtual
// time, so it is blind to the one failure mode a discrete-event kernel
// can manufacture all by itself: a same-instant livelock, where events
// keep firing at delay zero and the clock never advances. The event
// budget counts fired events and therefore catches exactly that case;
// the wall-clock and heap budgets bound the run against slow or leaky
// pathologies that advance the clock but never finish.
//
// Enforcement is designed for the hot path: an unbudgeted simulator
// carries a nil pointer and pays one nil check per event. The cheap
// comparisons (event count, next event's virtual time) run on every
// event; the expensive probes (time.Now, runtime/metrics) run on a
// coarse stride, trading promptness — a budget overrun is noticed
// within one stride — for negligible steady-state cost. Like context
// polling, none of the checks read simulation state, so a run that
// stays within budget executes exactly the event sequence it would
// have executed unbudgeted.

// Budget kinds, as reported by BudgetError.Kind.
const (
	// BudgetEvents is the fired-event ceiling (catches same-instant
	// livelock, which no virtual-time mechanism can see).
	BudgetEvents = "events"
	// BudgetVirtual is the virtual-time ceiling.
	BudgetVirtual = "virtual-time"
	// BudgetWall is the wall-clock deadline (coarse; checked every
	// wallCheckStride events).
	BudgetWall = "wall-clock"
	// BudgetHeap is the process heap ceiling (coarse; checked every
	// heapCheckStride events).
	BudgetHeap = "heap"
)

// Strides for the expensive probes. A wall-clock poll is a time.Now
// call; a heap poll is a runtime/metrics read. At kernel event rates
// (~10M events/s) the strides bound the probe overhead well under 1%
// while still noticing an overrun within milliseconds.
const (
	wallCheckStride = 4096
	heapCheckStride = 1 << 16
)

// heapMetric is the runtime/metrics sample the heap budget reads: live
// heap object bytes, the closest cheap proxy for "this run is eating
// memory" that does not stop the world.
const heapMetric = "/memory/classes/heap/objects:bytes"

// Budget bounds a single run's resource consumption. The zero value
// means "no budget". Per field: 0 leaves the field unset (callers that
// layer defaults, like the experiment engine, fill unset fields);
// negative explicitly disables that ceiling even when a default exists;
// positive enforces the ceiling.
type Budget struct {
	// MaxEvents caps fired events. This is the livelock guard: events
	// firing forever at the same instant never advance the clock, but
	// they always advance the fired counter.
	MaxEvents int64
	// MaxVirtual caps virtual time: the run halts rather than fire an
	// event scheduled past the ceiling.
	MaxVirtual time.Duration
	// WallClock caps real elapsed time since SetBudget, checked every
	// wallCheckStride events.
	WallClock time.Duration
	// MaxHeapBytes caps live heap object bytes (process-wide), checked
	// every heapCheckStride events.
	MaxHeapBytes int64
}

// Enabled reports whether any ceiling is set.
func (b Budget) Enabled() bool {
	return b.MaxEvents > 0 || b.MaxVirtual > 0 || b.WallClock > 0 || b.MaxHeapBytes > 0
}

// Or fills b's unset (zero) fields from def and returns the result.
// Negative fields stay negative: "explicitly unlimited" survives
// layering, so a caller can opt a single run out of an engine default.
func (b Budget) Or(def Budget) Budget {
	if b.MaxEvents == 0 {
		b.MaxEvents = def.MaxEvents
	}
	if b.MaxVirtual == 0 {
		b.MaxVirtual = def.MaxVirtual
	}
	if b.WallClock == 0 {
		b.WallClock = def.WallClock
	}
	if b.MaxHeapBytes == 0 {
		b.MaxHeapBytes = def.MaxHeapBytes
	}
	return b
}

// BudgetError reports a run halted because a resource budget was
// exhausted. It records which ceiling tripped, the configured limit,
// and the observed value at abort, in the kind's natural unit (events
// and bytes as counts, the time kinds as nanoseconds).
type BudgetError struct {
	// Kind is one of the Budget* constants.
	Kind string
	// Limit is the configured ceiling.
	Limit int64
	// Value is the observed value that exceeded the ceiling.
	Value int64
	// At is the virtual time the exhaustion was observed.
	At time.Duration
}

// Error implements error.
func (e *BudgetError) Error() string {
	switch e.Kind {
	case BudgetVirtual, BudgetWall:
		return fmt.Sprintf("sim: %s budget exhausted at virtual time %v: %v exceeds limit %v",
			e.Kind, e.At, time.Duration(e.Value), time.Duration(e.Limit))
	default:
		return fmt.Sprintf("sim: %s budget exhausted at virtual time %v: %d exceeds limit %d",
			e.Kind, e.At, e.Value, e.Limit)
	}
}

// budgetState is the per-simulator enforcement state behind the nil
// fast-path pointer.
type budgetState struct {
	limits    Budget
	wallStart time.Time
	// nextWall / nextHeap are the fired-event counts at which the next
	// coarse probe runs. They start at the current count so a fresh
	// budget is probed on the first event (a 1-byte heap ceiling trips
	// immediately, not 64k events later), then advance by the stride.
	nextWall uint64
	nextHeap uint64
	sample   []metrics.Sample
}

// SetBudget installs (or, with a budget whose every field is unset or
// negative, removes) the run's resource ceilings. The wall clock starts
// at the SetBudget call. Reset removes any installed budget, so pooled
// simulators never leak a ceiling into their next run.
func (s *Simulator) SetBudget(b Budget) {
	if !b.Enabled() {
		s.budget = nil
		return
	}
	st := &budgetState{
		limits:   b,
		nextWall: s.fired,
		nextHeap: s.fired,
	}
	if b.WallClock > 0 {
		st.wallStart = time.Now()
	}
	if b.MaxHeapBytes > 0 {
		st.sample = []metrics.Sample{{Name: heapMetric}}
	}
	s.budget = st
}

// Budget reports the installed budget (the zero Budget when none is
// installed).
func (s *Simulator) Budget() Budget {
	if s.budget == nil {
		return Budget{}
	}
	return s.budget.limits
}

// exceeded enforces the installed budget against the next live event;
// Run and Step call it before firing (s.budget is known non-nil). On
// exhaustion it records a *BudgetError (first failure wins), stops the
// run, and reports true.
func (s *Simulator) exceeded(next *event) bool {
	st := s.budget
	b := &st.limits
	if b.MaxEvents > 0 && s.fired >= uint64(b.MaxEvents) {
		return s.budgetFail(BudgetEvents, b.MaxEvents, int64(s.fired))
	}
	if b.MaxVirtual > 0 && next.at > b.MaxVirtual {
		return s.budgetFail(BudgetVirtual, int64(b.MaxVirtual), int64(next.at))
	}
	if b.WallClock > 0 && s.fired >= st.nextWall {
		st.nextWall = s.fired + wallCheckStride
		if elapsed := time.Since(st.wallStart); elapsed > b.WallClock {
			return s.budgetFail(BudgetWall, int64(b.WallClock), int64(elapsed))
		}
	}
	if b.MaxHeapBytes > 0 && s.fired >= st.nextHeap {
		st.nextHeap = s.fired + heapCheckStride
		metrics.Read(st.sample)
		if v := st.sample[0].Value; v.Kind() == metrics.KindUint64 && v.Uint64() > uint64(b.MaxHeapBytes) {
			return s.budgetFail(BudgetHeap, b.MaxHeapBytes, int64(v.Uint64()))
		}
	}
	return false
}

// budgetFail records the exhaustion as the simulator's failure (first
// failure wins, matching checks and cancellation) and stops the run.
func (s *Simulator) budgetFail(kind string, limit, value int64) bool {
	if s.failure == nil {
		s.failure = &BudgetError{Kind: kind, Limit: limit, Value: value, At: s.now}
	}
	s.stopped = true
	return true
}
