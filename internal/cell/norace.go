//go:build !race

package cell

// raceEnabled is false in ordinary builds; see race.go.
const raceEnabled = false
