package experiment

import (
	"strings"
	"testing"
	"time"

	"wtcp/internal/units"
)

func TestSeverityStudyImprovementGrows(t *testing.T) {
	// The paper's conjecture: "we expect our schemes to yield even better
	// performance if wireless links are more lossy." Compare EBSN's
	// relative gain at a mild and a harsh severity step.
	points, err := SeverityStudy(SeverityOptions{
		Replications: 5,
		Severities: []struct {
			MeanBad time.Duration
			BadBER  float64
		}{
			{1 * time.Second, 1e-2},
			{6 * time.Second, 1e-2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	mild, harsh := points[0], points[1]
	if harsh.ImprovementPct <= mild.ImprovementPct {
		t.Errorf("EBSN improvement did not grow with severity: %.0f%% (bad=1s) vs %.0f%% (bad=6s)",
			mild.ImprovementPct, harsh.ImprovementPct)
	}
	if mild.ImprovementPct <= 0 {
		t.Errorf("no improvement even at mild severity: %.0f%%", mild.ImprovementPct)
	}
	// Throughputs degrade with severity for both schemes.
	if harsh.BasicKbps.Mean() >= mild.BasicKbps.Mean() {
		t.Error("basic TCP did not degrade with severity")
	}
	if harsh.EBSNKbps.Mean() >= mild.EBSNKbps.Mean() {
		t.Error("EBSN did not degrade with severity")
	}
}

func TestSeverityRenderer(t *testing.T) {
	points, err := SeverityStudy(SeverityOptions{
		Replications: 1,
		Transfer:     20 * units.KB,
		Severities: []struct {
			MeanBad time.Duration
			BadBER  float64
		}{{2 * time.Second, 1e-2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	table := RenderSeverityTable("severity", points)
	if !strings.Contains(table, "improvement") || !strings.Contains(table, "%") {
		t.Errorf("table malformed:\n%s", table)
	}
}
