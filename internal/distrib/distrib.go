// Package distrib provides the random distributions workload models draw
// from: constant, uniform, exponential, Pareto (the classic heavy tail of
// web object sizes), and lognormal. Every distribution samples through
// the simulation's seeded RNG, so runs stay reproducible.
package distrib

import (
	"errors"
	"math"

	"wtcp/internal/sim"
)

// Distribution is a positive-valued random variable.
type Distribution interface {
	// Sample draws one value using rng.
	Sample(rng *sim.RNG) float64
	// Mean reports the distribution's expectation (for sizing
	// transfers and sanity checks).
	Mean() float64
}

// Constant is a degenerate distribution.
type Constant float64

var _ Distribution = Constant(0)

// Sample implements Distribution.
func (c Constant) Sample(*sim.RNG) float64 { return float64(c) }

// Mean implements Distribution.
func (c Constant) Mean() float64 { return float64(c) }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

var _ Distribution = Uniform{}

// Sample implements Distribution.
func (u Uniform) Sample(rng *sim.RNG) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Exponential has the given mean.
type Exponential struct {
	MeanValue float64
}

var _ Distribution = Exponential{}

// Sample implements Distribution.
func (e Exponential) Sample(rng *sim.RNG) float64 { return rng.Exp(e.MeanValue) }

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.MeanValue }

// Pareto is the heavy-tailed distribution with density
// shape*scale^shape/x^(shape+1) for x >= scale. Web object sizes are
// classically Pareto with shape ~1.2-1.5 — rare huge pages dominate the
// tail, which is exactly what stresses recovery schemes.
type Pareto struct {
	// Shape (alpha) controls tail heaviness; must exceed 1 for a finite
	// mean.
	Shape float64
	// Scale (x_min) is the minimum value.
	Scale float64
}

var _ Distribution = Pareto{}

// NewPareto validates the parameters.
func NewPareto(shape, scale float64) (Pareto, error) {
	if shape <= 1 {
		return Pareto{}, errors.New("distrib: Pareto shape must exceed 1 for a finite mean")
	}
	if scale <= 0 {
		return Pareto{}, errors.New("distrib: Pareto scale must be positive")
	}
	return Pareto{Shape: shape, Scale: scale}, nil
}

// Sample implements Distribution via inverse-CDF.
func (p Pareto) Sample(rng *sim.RNG) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return p.Scale / math.Pow(1-u, 1/p.Shape)
}

// Mean implements Distribution: shape*scale/(shape-1).
func (p Pareto) Mean() float64 {
	if p.Shape <= 1 {
		return math.Inf(1)
	}
	return p.Shape * p.Scale / (p.Shape - 1)
}

// ParetoWithMean builds a Pareto with the given shape whose mean is m.
func ParetoWithMean(shape, m float64) (Pareto, error) {
	if shape <= 1 || m <= 0 {
		return Pareto{}, errors.New("distrib: need shape > 1 and positive mean")
	}
	return Pareto{Shape: shape, Scale: m * (shape - 1) / shape}, nil
}

// Lognormal has parameters mu and sigma of the underlying normal.
type Lognormal struct {
	Mu, Sigma float64
}

var _ Distribution = Lognormal{}

// Sample implements Distribution.
func (l Lognormal) Sample(rng *sim.RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.Norm())
}

// Mean implements Distribution: exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}
